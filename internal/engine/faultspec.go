package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// faultCrashLoad is the external CPU load applied to a virtual node to
// "crash" it: just below saturation so the capacity metric stays finite but
// the node's share of new work collapses.
const faultCrashLoad = 0.99

// FaultKind enumerates the injectable fault classes of the -fault-spec
// grammar. Crash and rejoin are membership events; pause and slow are gray
// failures — the rank stays a member but degrades.
type FaultKind int

const (
	// FaultCrash kills the rank/node at the event iteration.
	FaultCrash FaultKind = iota
	// FaultRejoin restarts a previously crashed rank/node at the event
	// iteration: the virtual cluster lifts the crash load, the SPMD harness
	// relaunches the rank, which announces itself and is re-admitted.
	FaultRejoin
	// FaultPause partitions the rank away for the window [Iter, Until): it
	// keeps computing but its outgoing messages vanish (SPMD) or its node
	// saturates (virtual cluster).
	FaultPause
	// FaultSlow makes the rank a straggler over [Iter, Until): compute is
	// dilated by Factor (SPMD per-cell delay; virtual-cluster CPU load).
	FaultSlow
)

// String names the kind exactly as the grammar spells it.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRejoin:
		return "rejoin"
	case FaultPause:
		return "pause"
	default:
		return "slow"
	}
}

// FaultEvent is one scheduled injection.
type FaultEvent struct {
	Kind FaultKind
	// Rank is the target rank (SPMD) or virtual node.
	Rank int
	// Iter is the iteration the event fires (window start for pause/slow).
	Iter int
	// Until is the exclusive window end for pause/slow (unused otherwise).
	Until int
	// Factor is the slowdown multiplier for slow events (e.g. 4 = the rank
	// computes at quarter speed).
	Factor float64
}

// FaultSchedule is an ordered set of injections — one run's churn script.
type FaultSchedule []FaultEvent

// Validate checks internal consistency against a group of n ranks.
func (fs FaultSchedule) Validate(n int) error {
	crashed := make(map[int]int) // rank → latest crash iter
	for _, ev := range fs {
		if ev.Rank < 0 || ev.Rank >= n {
			return fmt.Errorf("engine: fault %s: rank %d outside [0,%d)", ev.Kind, ev.Rank, n)
		}
		if ev.Iter < 0 {
			return fmt.Errorf("engine: fault %s: negative iteration %d", ev.Kind, ev.Iter)
		}
		switch ev.Kind {
		case FaultCrash:
			crashed[ev.Rank] = ev.Iter
		case FaultRejoin:
			at, ok := crashed[ev.Rank]
			if !ok {
				return fmt.Errorf("engine: rejoin:rank=%d,iter=%d without a preceding crash", ev.Rank, ev.Iter)
			}
			if ev.Iter <= at {
				return fmt.Errorf("engine: rejoin:rank=%d,iter=%d not after its crash at iter %d", ev.Rank, ev.Iter, at)
			}
			delete(crashed, ev.Rank)
		case FaultPause, FaultSlow:
			if ev.Until <= ev.Iter {
				return fmt.Errorf("engine: fault %s: window [%d,%d) is empty", ev.Kind, ev.Iter, ev.Until)
			}
			if ev.Kind == FaultSlow && ev.Factor <= 1 {
				return fmt.Errorf("engine: fault slow: factor %g must exceed 1", ev.Factor)
			}
		}
	}
	return nil
}

// Crashes returns the schedule's crash events (the fail-stop subset).
func (fs FaultSchedule) Crashes() []FaultEvent {
	var out []FaultEvent
	for _, ev := range fs {
		if ev.Kind == FaultCrash {
			out = append(out, ev)
		}
	}
	return out
}

// CrashAt reports whether the schedule fail-stops the rank at iter — used
// by the plain (non-FT) runner, where every crash is terminal.
func (fs FaultSchedule) CrashAt(rank, iter int) bool {
	for _, ev := range fs {
		if ev.Kind == FaultCrash && ev.Rank == rank && ev.Iter == iter {
			return true
		}
	}
	return false
}

// WithoutRejoins strips rejoin events — the fail-stop baseline of the same
// churn script, for A/B comparisons.
func (fs FaultSchedule) WithoutRejoins() FaultSchedule {
	var out FaultSchedule
	for _, ev := range fs {
		if ev.Kind != FaultRejoin {
			out = append(out, ev)
		}
	}
	return out
}

// ParseFaultSpec parses the CLI fault-injection syntax shared by cmd/amrun
// and cmd/experiments: one or more ';'-separated events,
//
//	crash:rank=2,iter=10
//	rejoin:rank=2,iter=18
//	pause:rank=3,iter=5,iters=2
//	slow:rank=1,from=12,to=20,factor=4
//
// "rank" and "node" are synonyms — the SPMD runner targets a transport
// rank, the virtual-cluster engine a simulated node. A pause window defaults
// to one iteration; a slow window's factor defaults to 4. The full grammar
// is documented in DESIGN.md §13.
func ParseFaultSpec(s string) (FaultSchedule, error) {
	var out FaultSchedule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseFaultEvent(part)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("engine: fault spec %q holds no events", s)
	}
	return out, nil
}

// parseFaultEvent parses a single kind:k=v,... clause.
func parseFaultEvent(s string) (FaultEvent, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return FaultEvent{}, fmt.Errorf("engine: fault spec %q: want kind:rank=N,iter=K", s)
	}
	ev := FaultEvent{Rank: -1, Iter: -1, Until: -1}
	switch kind {
	case "crash":
		ev.Kind = FaultCrash
	case "rejoin":
		ev.Kind = FaultRejoin
	case "pause":
		ev.Kind = FaultPause
	case "slow":
		ev.Kind = FaultSlow
	default:
		return FaultEvent{}, fmt.Errorf("engine: fault spec %q: unknown kind %q (want crash|rejoin|pause|slow)", s, kind)
	}
	iters := -1
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return FaultEvent{}, fmt.Errorf("engine: fault spec %q: bad field %q", s, kv)
		}
		if key == "factor" {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 1 {
				return FaultEvent{}, fmt.Errorf("engine: fault spec %q: factor %q must be a number > 1", s, val)
			}
			if ev.Kind != FaultSlow {
				return FaultEvent{}, fmt.Errorf("engine: fault spec %q: factor only applies to slow", s)
			}
			ev.Factor = f
			continue
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return FaultEvent{}, fmt.Errorf("engine: fault spec %q: field %q needs a non-negative integer", s, kv)
		}
		switch key {
		case "rank", "node":
			ev.Rank = n
		case "iter", "from":
			ev.Iter = n
		case "to":
			ev.Until = n
		case "iters":
			iters = n
		default:
			return FaultEvent{}, fmt.Errorf("engine: fault spec %q: unknown field %q", s, key)
		}
	}
	if ev.Rank < 0 || ev.Iter < 0 {
		return FaultEvent{}, fmt.Errorf("engine: fault spec %q: both rank (or node) and iter (or from) are required", s)
	}
	switch ev.Kind {
	case FaultPause, FaultSlow:
		if iters >= 0 && ev.Until >= 0 {
			return FaultEvent{}, fmt.Errorf("engine: fault spec %q: give either to= or iters=, not both", s)
		}
		if iters >= 0 {
			ev.Until = ev.Iter + iters
		}
		if ev.Until < 0 {
			ev.Until = ev.Iter + 1
		}
		if ev.Until <= ev.Iter {
			return FaultEvent{}, fmt.Errorf("engine: fault spec %q: window [%d,%d) is empty", s, ev.Iter, ev.Until)
		}
		if ev.Kind == FaultSlow && ev.Factor == 0 {
			ev.Factor = 4
		}
	default:
		if ev.Until >= 0 || iters >= 0 {
			return FaultEvent{}, fmt.Errorf("engine: fault spec %q: %s takes no window", s, ev.Kind)
		}
		ev.Until = 0
	}
	return ev, nil
}
