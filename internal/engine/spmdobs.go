package engine

import (
	"strconv"

	"samrpart/internal/obs"
)

// spmdObs holds one rank's pre-registered SPMD metric handles. It hangs off
// the rank's commScratch so the shared communication paths (postSends,
// finishRecvs, redistribute) see it from both the plain and the
// fault-tolerant runner without signature changes. The nil *spmdObs
// disables everything: every method no-ops, and the run is bit-identical
// to an uninstrumented one.
type spmdObs struct {
	rt   *obs.Runtime
	reg  *obs.Registry
	rank int
	iter int // current iteration, set each step for span attribution

	bytesSent     *obs.Counter
	msgsSent      *obs.Counter
	msgsRecvd     *obs.Counter
	migratedBytes *obs.Counter
	retainedBytes *obs.Counter
	interiorSteps *obs.Counter
	boundarySteps *obs.Counter
	admissions    *obs.Counter
	demotions     *obs.Counter
	promotions    *obs.Counter
	ckptFallbacks *obs.Counter

	// lastSync snapshots the SPMDResult counters at the previous sync so
	// the registry mirrors them by cheap deltas once per iteration instead
	// of hooking every increment site.
	lastSync SPMDResult

	// peerBytes/peerMsgs cache the per-peer send counters; resolution is a
	// map hit per message (at most one message per peer per iteration in
	// coalesced mode), registration only on first contact with a peer.
	peerBytes map[int]*obs.Counter
	peerMsgs  map[int]*obs.Counter
}

// newSPMDObs registers rank's SPMD metric families (nil runtime → nil,
// everything off).
func newSPMDObs(rt *obs.Runtime, rank int) *spmdObs {
	if rt == nil {
		return nil
	}
	reg := rt.Registry()
	rl := obs.Label{Key: "rank", Value: strconv.Itoa(rank)}
	return &spmdObs{
		rt:   rt,
		reg:  reg,
		rank: rank,
		bytesSent: reg.Counter("samr_spmd_bytes_sent_total",
			"Transport payload bytes sent.", rl),
		msgsSent: reg.Counter("samr_spmd_msgs_sent_total",
			"Point-to-point data-plane messages sent.", rl),
		msgsRecvd: reg.Counter("samr_spmd_msgs_recvd_total",
			"Point-to-point data-plane messages received.", rl),
		migratedBytes: reg.Counter("samr_spmd_migrated_bytes_total",
			"Patch payload bytes shipped to other ranks during redistributions.", rl),
		retainedBytes: reg.Counter("samr_spmd_retained_bytes_total",
			"Patch payload bytes repartitions let this rank keep in place.", rl),
		interiorSteps: reg.Counter("samr_spmd_interior_steps_total",
			"Patch steps taken while remote halos were in flight.", rl),
		boundarySteps: reg.Counter("samr_spmd_boundary_steps_total",
			"Patch steps that waited on remote halo regions.", rl),
		admissions: reg.Counter("samr_spmd_admissions_total",
			"Dead ranks re-admitted through the rejoin protocol.", rl),
		demotions: reg.Counter("samr_spmd_straggler_demotions_total",
			"Straggler detector demotions observed by this rank's replica.", rl),
		promotions: reg.Counter("samr_spmd_straggler_promotions_total",
			"Straggler detector promotions observed by this rank's replica.", rl),
		ckptFallbacks: reg.Counter("samr_spmd_ckpt_fallbacks_total",
			"Corrupt checkpoint epochs skipped during restores.", rl),
		peerBytes: map[int]*obs.Counter{},
		peerMsgs:  map[int]*obs.Counter{},
	}
}

// setIter records the current iteration for span attribution.
func (om *spmdObs) setIter(iter int) {
	if om == nil {
		return
	}
	om.iter = iter
}

// span starts a phase span on this rank at the current iteration (zero
// span when off).
func (om *spmdObs) span(p obs.Phase) obs.Span {
	if om == nil {
		return obs.Span{}
	}
	return om.rt.Span(p, om.rank, om.iter)
}

// peerSent charges one outgoing message to the per-peer counters.
func (om *spmdObs) peerSent(peer int, bytes int) {
	if om == nil {
		return
	}
	cb := om.peerBytes[peer]
	if cb == nil {
		ls := []obs.Label{
			{Key: "rank", Value: strconv.Itoa(om.rank)},
			{Key: "peer", Value: strconv.Itoa(peer)},
		}
		cb = om.reg.Counter("samr_spmd_peer_bytes_total",
			"Transport payload bytes sent per peer rank.", ls...)
		om.peerBytes[peer] = cb
		om.peerMsgs[peer] = om.reg.Counter("samr_spmd_peer_msgs_total",
			"Data-plane messages sent per peer rank.", ls...)
	}
	cb.Add(int64(bytes))
	om.peerMsgs[peer].Inc()
}

// sync mirrors the SPMDResult counters accumulated since the last sync
// into the registry (called once per iteration and at finalize).
func (om *spmdObs) sync(res *SPMDResult) {
	if om == nil {
		return
	}
	om.bytesSent.Add(res.BytesSent - om.lastSync.BytesSent)
	om.msgsSent.Add(res.MsgsSent - om.lastSync.MsgsSent)
	om.msgsRecvd.Add(res.MsgsRecvd - om.lastSync.MsgsRecvd)
	om.migratedBytes.Add(res.MigratedBytes - om.lastSync.MigratedBytes)
	om.retainedBytes.Add(res.RetainedBytes - om.lastSync.RetainedBytes)
	om.interiorSteps.Add(res.InteriorSteps - om.lastSync.InteriorSteps)
	om.boundarySteps.Add(res.BoundarySteps - om.lastSync.BoundarySteps)
	om.admissions.Add(int64(res.Admissions - om.lastSync.Admissions))
	om.demotions.Add(int64(res.StragglerDemotions - om.lastSync.StragglerDemotions))
	om.promotions.Add(int64(res.StragglerPromotions - om.lastSync.StragglerPromotions))
	om.ckptFallbacks.Add(int64(res.CkptFallbacks - om.lastSync.CkptFallbacks))
	om.lastSync.BytesSent = res.BytesSent
	om.lastSync.MsgsSent = res.MsgsSent
	om.lastSync.MsgsRecvd = res.MsgsRecvd
	om.lastSync.MigratedBytes = res.MigratedBytes
	om.lastSync.RetainedBytes = res.RetainedBytes
	om.lastSync.InteriorSteps = res.InteriorSteps
	om.lastSync.BoundarySteps = res.BoundarySteps
	om.lastSync.Admissions = res.Admissions
	om.lastSync.StragglerDemotions = res.StragglerDemotions
	om.lastSync.StragglerPromotions = res.StragglerPromotions
	om.lastSync.CkptFallbacks = res.CkptFallbacks
}
