package engine

import (
	"reflect"
	"testing"

	"samrpart/internal/partition"
	"samrpart/internal/transport"
)

// TestParallelPlanBuildersBitExact checks that the chunked worker-pool plan
// builders reproduce the serial plans exactly — same structs, same order —
// across widths, cluster shapes, and both plan kinds.
func TestParallelPlanBuildersBitExact(t *testing.T) {
	for _, tc := range []struct{ boxes, ranks int }{
		{16, 2}, {64, 4}, {256, 7}, {1024, 32},
	} {
		a := benchTileAssignment(tc.boxes, tc.ranks, 0)
		next := benchTileAssignment(tc.boxes, tc.ranks, 0)
		for i := range next.Owners {
			if i%4 == 0 {
				next.Owners[i] = (next.Owners[i] + 1) % tc.ranks
			}
		}
		for me := 0; me < tc.ranks; me++ {
			var serial commScratch
			wantGhost := buildGhostPlan(newAsnView(a, me), me, 2, "e1-", false, &serial)
			wantMig := buildMigPlan(newAsnView(a, me), newAsnView(next, me), me, &serial)
			for _, w := range []int{2, 3, 8} {
				par := commScratch{workers: w}
				gotGhost := buildGhostPlan(newAsnView(a, me), me, 2, "e1-", false, &par)
				if !ghostPlansEqual(gotGhost, wantGhost) {
					t.Fatalf("boxes=%d ranks=%d rank %d workers=%d: ghost plan differs from serial",
						tc.boxes, tc.ranks, me, w)
				}
				gotMig := buildMigPlan(newAsnView(a, me), newAsnView(next, me), me, &par)
				if !reflect.DeepEqual(gotMig, wantMig) {
					t.Fatalf("boxes=%d ranks=%d rank %d workers=%d: migration plan differs from serial",
						tc.boxes, tc.ranks, me, w)
				}
			}
		}
	}
}

// TestWorkersBitExactEndToEnd runs the same SPMD program serially and with
// intra-rank workers (parallel plan builds, frame pack, and region apply)
// and requires cell-bitwise identical results plus identical message and
// byte counters — the wire protocol must not notice the pool.
func TestWorkersBitExactEndToEnd(t *testing.T) {
	const ranks = 4
	run := func(workers int) []*SPMDResult {
		eps, err := transport.NewGroup(ranks)
		if err != nil {
			t.Fatal(err)
		}
		cfg := spmdConfig(12)
		cfg.CapsAt = capsSwitcher(ranks)
		cfg.Workers = workers
		return runSPMD(t, eps, cfg)
	}
	want := run(0)
	for _, w := range []int{2, 4} {
		got := run(w)
		for r := range got {
			if got[r].BytesSent != want[r].BytesSent || got[r].MsgsSent != want[r].MsgsSent {
				t.Fatalf("workers=%d rank %d: bytes/msgs %d/%d, serial %d/%d",
					w, r, got[r].BytesSent, got[r].MsgsSent, want[r].BytesSent, want[r].MsgsSent)
			}
		}
		comparePatchesBitExact(t, spmdConfig(12).Kernel.NumFields(),
			gatherPatches(t, got), gatherPatches(t, want))
	}
}

// TestWorkersBitExactFT repeats the worker differential through the
// fault-tolerant runner with the hierarchical partitioner and a crash +
// rejoin, so the pooled builders also run across epoch bumps and recovery
// replans.
func TestWorkersBitExactFT(t *testing.T) {
	const iters, ranks = 16, 4
	run := func(workers int) []*SPMDResult {
		eps, err := transport.NewGroup(ranks)
		if err != nil {
			t.Fatal(err)
		}
		cfg := elasticConfig(t, iters, t.TempDir())
		h := partition.NewHierarchical(2)
		h.GroupSize = 2
		cfg.Partitioner = h
		cfg.Workers = workers
		cfg.Faults = FaultSchedule{
			{Kind: FaultCrash, Rank: 2, Iter: 10},
			{Kind: FaultRejoin, Rank: 2, Iter: 12},
		}
		return runSPMD(t, wrapFaulty(eps), cfg)
	}
	want := composeField(t, run(0), spmdConfig(iters).Domain)
	got := composeField(t, run(4), spmdConfig(iters).Domain)
	requireSameField(t, got, want, "workers=4 vs serial across crash+rejoin")
}
