package engine

import (
	"reflect"
	"testing"

	"samrpart/internal/partition"
	"samrpart/internal/transport"
)

// TestDistributedGhostPlansMatchOracle checks, for every rank of several
// cluster shapes, that the distributed per-rank ghost-plan builder produces
// a plan bit-identical to the centralized global pass.
func TestDistributedGhostPlansMatchOracle(t *testing.T) {
	for _, tc := range []struct{ boxes, ranks int }{
		{16, 2}, {64, 4}, {256, 7}, {1024, 32},
	} {
		a := benchTileAssignment(tc.boxes, tc.ranks, 0)
		central := centralGhostPlans(a, tc.ranks, 2, "e1-", false)
		for me := 0; me < tc.ranks; me++ {
			var sc commScratch
			got := buildGhostPlan(newAsnView(a, me), me, 2, "e1-", false, &sc)
			if !ghostPlansEqual(got, central[me]) {
				t.Fatalf("boxes=%d ranks=%d: rank %d distributed ghost plan differs from oracle",
					tc.boxes, tc.ranks, me)
			}
		}
	}
}

// TestDistributedMigPlansMatchOracle checks every rank's distributed
// migration plan against the centralized oracle for a seam shift (owners
// move, tiling unchanged) and for a tiling change (different box lists).
func TestDistributedMigPlansMatchOracle(t *testing.T) {
	const n, ranks = 256, 8
	old := benchTileAssignment(n, ranks, 0)
	shifted := benchTileAssignment(n, ranks, 0)
	for i := range shifted.Owners {
		// Rotate every fourth tile's owner: sends, recvs and retained
		// regions all occur on every rank.
		if i%4 == 0 {
			shifted.Owners[i] = (shifted.Owners[i] + 1) % ranks
		}
	}
	coarse := benchTileAssignment(n/4, ranks, 0) // different tiling entirely
	for _, next := range []*partition.Assignment{shifted, coarse} {
		central := centralMigPlans(old, next, ranks)
		for me := 0; me < ranks; me++ {
			var sc commScratch
			got := buildMigPlan(newAsnView(old, me), newAsnView(next, me), me, &sc)
			if !reflect.DeepEqual(got, central[me]) {
				t.Fatalf("rank %d distributed migration plan differs from oracle", me)
			}
		}
	}
}

// TestRepartitionPlanCostOracle exercises the exported measurement: the
// sampled ranks must match the oracle and the delta wire form must beat the
// full table when only owners moved.
func TestRepartitionPlanCostOracle(t *testing.T) {
	const n, ranks = 256, 16
	old := benchTileAssignment(n, ranks, 0)
	next := benchTileAssignment(n, ranks, 0)
	for i := 0; i < len(next.Owners); i += 8 {
		next.Owners[i] = (next.Owners[i] + 1) % ranks
	}
	rep, err := RepartitionPlanCost(old, next, ranks, []int{0, ranks / 2, ranks - 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OracleOK {
		t.Fatal("distributed plans diverged from the centralized oracle")
	}
	if rep.DeltaWireBytes >= rep.FullWireBytes {
		t.Fatalf("delta wire form (%d B) not smaller than full table (%d B)",
			rep.DeltaWireBytes, rep.FullWireBytes)
	}
	if _, err := RepartitionPlanCost(old, next, ranks, nil, 1); err == nil {
		t.Fatal("expected error for empty sample set")
	}
	if _, err := RepartitionPlanCost(old, next, ranks, []int{ranks}, 1); err == nil {
		t.Fatal("expected error for out-of-range sample rank")
	}
}

// TestDeltaBroadcastRoundTrip checks that applying an owner-delta wire form
// reproduces exactly the view a full rebuild would give, for every rank,
// including the incremental mine list and owner table.
func TestDeltaBroadcastRoundTrip(t *testing.T) {
	const n, ranks = 64, 4
	old := benchTileAssignment(n, ranks, 0)
	next := benchTileAssignment(n, ranks, 0)
	for i := 0; i < len(next.Owners); i += 3 {
		next.Owners[i] = (next.Owners[i] + 2) % ranks
	}
	for me := 0; me < ranks; me++ {
		prev := newAsnView(old, me)
		wire := encodeAssignment(prev, next)
		if !wire.Delta {
			t.Fatal("expected the delta wire form for an owner-only change")
		}
		got := applyDelta(prev, &wire, me)
		want := newAsnView(next, me)
		if !reflect.DeepEqual(got.Owners, want.Owners) {
			t.Fatalf("rank %d: delta owners diverged", me)
		}
		if !reflect.DeepEqual(got.mine, want.mine) {
			t.Fatalf("rank %d: delta mine list %v, want %v", me, got.mine, want.mine)
		}
		if len(got.Boxes) != len(prev.Boxes) || &got.Boxes[0] != &prev.Boxes[0] {
			t.Fatalf("rank %d: delta view must alias the standing box list", me)
		}
	}
	// A tiling change must fall back to the full table.
	coarse := benchTileAssignment(n/4, ranks, 0)
	if wire := encodeAssignment(newAsnView(old, 0), coarse); wire.Delta {
		t.Fatal("delta wire form used across a tiling change")
	}
}

// TestMergeMine covers the incremental own-box list maintenance.
func TestMergeMine(t *testing.T) {
	for _, tc := range []struct {
		mine, add, del, want []int
	}{
		{[]int{1, 3, 5}, nil, nil, []int{1, 3, 5}},
		{[]int{1, 3, 5}, []int{0, 4, 9}, nil, []int{0, 1, 3, 4, 5, 9}},
		{[]int{1, 3, 5}, nil, []int{3}, []int{1, 5}},
		{[]int{1, 3, 5}, []int{2}, []int{1, 5}, []int{2, 3}},
		{nil, []int{7}, nil, []int{7}},
		{[]int{2}, nil, []int{2}, []int{}},
	} {
		got := mergeMine(tc.mine, tc.add, tc.del)
		if len(got) != len(tc.want) {
			t.Fatalf("mergeMine(%v,%v,%v) = %v, want %v", tc.mine, tc.add, tc.del, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("mergeMine(%v,%v,%v) = %v, want %v", tc.mine, tc.add, tc.del, got, tc.want)
			}
		}
	}
}

// runCentralAndDistributed runs the same config with the distributed plan
// builders and with the centralized oracle over fresh endpoint groups and
// bit-compares the final global state — the end-to-end form of the plan
// differential, covering mid-run repartitions and migrations.
func runCentralAndDistributed(t *testing.T, cfg SPMDConfig, mk func() []transport.Endpoint) {
	t.Helper()
	cfg.CentralPlans = false
	dist := runSPMD(t, mk(), cfg)
	cfg.CentralPlans = true
	cent := runSPMD(t, mk(), cfg)
	var reparts int64
	for _, r := range dist {
		reparts += int64(r.Repartitions)
	}
	if reparts == 0 {
		t.Fatal("no repartition happened; the migration plans went unexercised")
	}
	comparePatchesBitExact(t, cfg.Kernel.NumFields(),
		gatherPatches(t, dist), gatherPatches(t, cent))
}

// TestCentralPlansBitExact3D runs the 3D Euler solver across three ranks
// with a mid-run capacity shift and requires the distributed plan builders
// to reproduce the centralized path exactly, cell for cell.
func TestCentralPlansBitExact3D(t *testing.T) {
	cfg := euler3DConfig(10)
	cfg.CapsAt = capsSwitcher(3)
	runCentralAndDistributed(t, cfg, func() []transport.Endpoint {
		eps, err := transport.NewGroup(3)
		if err != nil {
			t.Fatal(err)
		}
		return eps
	})
}

// TestCentralPlansBitExact3DOverTCP repeats the differential over real
// sockets, per-pair exchange mode, so both plan paths also agree about
// per-pair tags and message ordering on a buffered wire.
func TestCentralPlansBitExact3DOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP differential skipped in -short")
	}
	cfg := euler3DConfig(6)
	cfg.RepartEvery = 3
	cfg.CapsAt = capsSwitcher(3)
	cfg.PerPairExchange = true
	runCentralAndDistributed(t, cfg, func() []transport.Endpoint {
		eps, err := transport.NewTCPGroup(3, "127.0.0.1")
		if err != nil {
			t.Fatal(err)
		}
		return eps
	})
}
