package sfc

import (
	"math"

	"samrpart/internal/geom"
)

// LocalityStats quantifies how well a curve preserves spatial locality, the
// property GrACE's composite distribution depends on.
type LocalityStats struct {
	// MeanNeighborGap is the mean |index(p) - index(q)| over all pairs of
	// face-adjacent lattice points — lower means spatial neighbors stay
	// close on the curve.
	MeanNeighborGap float64
	// MaxNeighborGap is the worst such gap.
	MaxNeighborGap uint64
	// MeanSegmentSurface is, for an equal split of the curve into
	// segments (one per "node"), the mean number of exposed cell faces
	// per owned cell — exactly the ghost-communication surface a node
	// pays when it owns a contiguous curve segment. Lower is better.
	MeanSegmentSurface float64
}

// MeasureLocality computes the stats for a curve over the full lattice of
// the given rank and bits (keep rank*bits modest: the scan is exhaustive).
// segments controls the segment-span metric (e.g. the node count).
func MeasureLocality(c Curve, rank, bits, segments int) LocalityStats {
	n := 1 << uint(bits)
	total := uint64(1) << uint(rank*bits)
	var stats LocalityStats
	var gapSum float64
	var gapCount int64
	// Neighbor gaps: for each point, look at +1 neighbors per axis.
	var walk func(d int, p geom.Point)
	walk = func(d int, p geom.Point) {
		if d == rank {
			idx := c.Index(p, rank, bits)
			for ax := 0; ax < rank; ax++ {
				q := p
				q[ax]++
				if q[ax] >= n {
					continue
				}
				jdx := c.Index(q, rank, bits)
				gap := idx - jdx
				if jdx > idx {
					gap = jdx - idx
				}
				gapSum += float64(gap)
				gapCount++
				if gap > stats.MaxNeighborGap {
					stats.MaxNeighborGap = gap
				}
			}
			return
		}
		for v := 0; v < n; v++ {
			p[d] = v
			walk(d+1, p)
		}
	}
	walk(0, geom.Point{})
	if gapCount > 0 {
		stats.MeanNeighborGap = gapSum / float64(gapCount)
	}
	// Segment surfaces: assign cell -> segment by curve position, then
	// count faces whose neighbor lies in a different segment (or outside
	// the lattice).
	if segments > 0 {
		per := total / uint64(segments)
		if per == 0 {
			per = 1
		}
		segOf := func(idx uint64) uint64 { return idx / per }
		var surfSum float64
		var cells int64
		var scan func(d int, p geom.Point)
		scan = func(d int, p geom.Point) {
			if d == rank {
				mine := segOf(c.Index(p, rank, bits))
				faces := 0
				for ax := 0; ax < rank; ax++ {
					for _, dir := range [2]int{-1, 1} {
						q := p
						q[ax] += dir
						if q[ax] < 0 || q[ax] >= n {
							continue // physical boundary: no ghost traffic
						}
						if segOf(c.Index(q, rank, bits)) != mine {
							faces++
						}
					}
				}
				surfSum += float64(faces)
				cells++
				return
			}
			for v := 0; v < n; v++ {
				p[d] = v
				scan(d+1, p)
			}
		}
		scan(0, geom.Point{})
		if cells > 0 {
			stats.MeanSegmentSurface = surfSum / float64(cells)
		}
	}
	return stats
}

// SurfaceToVolume returns the ghost-surface to interior-volume ratio of a
// box — the communication-to-computation proxy partition quality affects.
func SurfaceToVolume(b geom.Box, ghost int) float64 {
	interior := float64(b.Cells())
	if interior == 0 {
		return math.Inf(1)
	}
	halo := float64(b.Grow(ghost).Cells()) - interior
	return halo / interior
}
