// Package sfc implements space-filling curves over integer lattices.
//
// GrACE maps the adaptive grid hierarchy to a one-dimensional index space
// using a space-filling curve so that index locality corresponds to spatial
// locality (Sagan 1994). Two curves are provided: Morton (Z-order, bit
// interleave) and Hilbert (Skilling's transpose construction, "Programming
// the Hilbert curve", AIP 2004), both for any rank in 1..geom.MaxDim and up
// to 20 bits per axis (so indices fit comfortably in a uint64 at rank 3).
//
// The curves operate on non-negative coordinates; callers partitioning a
// domain translate boxes into the domain-relative frame first (see Mapper).
package sfc

import (
	"fmt"

	"samrpart/internal/geom"
)

// MaxBits is the largest supported number of bits per axis. With rank 3
// this yields 60-bit curve indices.
const MaxBits = 20

// Curve enumerates points of an axis-aligned lattice in a locality
// preserving order. Implementations must be bijections between
// [0, 2^(rank*bits)) and the lattice [0, 2^bits)^rank.
type Curve interface {
	// Name identifies the curve ("morton", "hilbert").
	Name() string
	// Index maps a lattice point to its position along the curve.
	Index(p geom.Point, rank, bits int) uint64
	// Point maps a curve position back to the lattice point.
	Point(idx uint64, rank, bits int) geom.Point
}

// BitsFor returns the number of bits per axis needed to index extents up to
// n cells (n >= 1).
func BitsFor(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

func checkArgs(rank, bits int) {
	if rank < 1 || rank > geom.MaxDim {
		panic(fmt.Sprintf("sfc: invalid rank %d", rank))
	}
	if bits < 1 || bits > MaxBits {
		panic(fmt.Sprintf("sfc: invalid bits %d", bits))
	}
}

// ByName returns the named curve ("morton" or "hilbert").
func ByName(name string) (Curve, error) {
	switch name {
	case "morton":
		return Morton{}, nil
	case "hilbert":
		return Hilbert{}, nil
	default:
		return nil, fmt.Errorf("sfc: unknown curve %q", name)
	}
}

// Morton is the Z-order curve: the index is the bit interleave of the
// coordinates. Cheap to evaluate, with slightly worse locality than Hilbert.
type Morton struct{}

// Name implements Curve.
func (Morton) Name() string { return "morton" }

// Index implements Curve.
func (Morton) Index(p geom.Point, rank, bits int) uint64 {
	checkArgs(rank, bits)
	var idx uint64
	for b := bits - 1; b >= 0; b-- {
		for d := 0; d < rank; d++ {
			idx = idx<<1 | uint64(p[d]>>uint(b))&1
		}
	}
	return idx
}

// Point implements Curve.
func (Morton) Point(idx uint64, rank, bits int) geom.Point {
	checkArgs(rank, bits)
	var p geom.Point
	shift := uint(rank*bits - 1)
	for b := bits - 1; b >= 0; b-- {
		for d := 0; d < rank; d++ {
			p[d] |= int(idx>>shift&1) << uint(b)
			shift--
		}
	}
	return p
}

// Hilbert is the Hilbert curve via Skilling's transpose algorithm. Adjacent
// curve indices are always adjacent lattice points (unit L1 distance), the
// locality property GrACE relies on for partition contiguity.
type Hilbert struct{}

// Name implements Curve.
func (Hilbert) Name() string { return "hilbert" }

// Index implements Curve.
func (Hilbert) Index(p geom.Point, rank, bits int) uint64 {
	checkArgs(rank, bits)
	var x [geom.MaxDim]uint32
	for d := 0; d < rank; d++ {
		x[d] = uint32(p[d])
	}
	axesToTranspose(x[:rank], bits)
	// Interleave the transposed coordinates, most significant bit plane
	// first, axis 0 first within a plane.
	var idx uint64
	for b := bits - 1; b >= 0; b-- {
		for d := 0; d < rank; d++ {
			idx = idx<<1 | uint64(x[d]>>uint(b))&1
		}
	}
	return idx
}

// Point implements Curve.
func (Hilbert) Point(idx uint64, rank, bits int) geom.Point {
	checkArgs(rank, bits)
	var x [geom.MaxDim]uint32
	shift := uint(rank*bits - 1)
	for b := bits - 1; b >= 0; b-- {
		for d := 0; d < rank; d++ {
			x[d] |= uint32(idx>>shift&1) << uint(b)
			shift--
		}
	}
	transposeToAxes(x[:rank], bits)
	var p geom.Point
	for d := 0; d < rank; d++ {
		p[d] = int(x[d])
	}
	return p
}

// axesToTranspose converts lattice coordinates into the transposed Hilbert
// index representation, in place (Skilling 2004).
func axesToTranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(1) << uint(bits-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose, in place (Skilling 2004).
func transposeToAxes(x []uint32, bits int) {
	n := len(x)
	nn := uint32(2) << uint(bits-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != nn; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}
