package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"samrpart/internal/geom"
)

func TestBitsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {32, 5}, {33, 6}, {128, 7},
	}
	for _, c := range cases {
		if got := BitsFor(c.n); got != c.want {
			t.Errorf("BitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"morton", "hilbert"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := ByName("peano"); err == nil {
		t.Error("ByName should reject unknown curves")
	}
}

func TestMortonKnownValues(t *testing.T) {
	m := Morton{}
	// 2D, 2 bits: index = interleave(y into odd... axis 0 first in plane).
	cases := []struct {
		p    geom.Point
		want uint64
	}{
		{geom.Pt2(0, 0), 0},
		{geom.Pt2(1, 0), 2}, // x is axis 0: contributes the higher bit in each plane pair
		{geom.Pt2(0, 1), 1},
		{geom.Pt2(1, 1), 3},
		{geom.Pt2(2, 2), 12},
		{geom.Pt2(3, 3), 15},
	}
	for _, c := range cases {
		if got := m.Index(c.p, 2, 2); got != c.want {
			t.Errorf("Morton.Index(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func roundTrip(t *testing.T, c Curve, rank, bits int) {
	t.Helper()
	n := 1 << uint(bits)
	total := uint64(1)
	for d := 0; d < rank; d++ {
		total *= uint64(n)
	}
	seen := make(map[uint64]bool, total)
	var p geom.Point
	var walk func(d int)
	walk = func(d int) {
		if d == rank {
			idx := c.Index(p, rank, bits)
			if idx >= total {
				t.Fatalf("%s: index %d out of range for %v", c.Name(), idx, p)
			}
			if seen[idx] {
				t.Fatalf("%s: duplicate index %d at %v", c.Name(), idx, p)
			}
			seen[idx] = true
			if back := c.Point(idx, rank, bits); back != p {
				t.Fatalf("%s: Point(Index(%v)) = %v", c.Name(), p, back)
			}
			return
		}
		for v := 0; v < n; v++ {
			p[d] = v
			walk(d + 1)
		}
		p[d] = 0
	}
	walk(0)
	if uint64(len(seen)) != total {
		t.Fatalf("%s: covered %d of %d indices", c.Name(), len(seen), total)
	}
}

func TestBijection2D(t *testing.T) {
	roundTrip(t, Morton{}, 2, 4)
	roundTrip(t, Hilbert{}, 2, 4)
}

func TestBijection3D(t *testing.T) {
	roundTrip(t, Morton{}, 3, 3)
	roundTrip(t, Hilbert{}, 3, 3)
}

func TestHilbertAdjacency(t *testing.T) {
	// The defining locality property: consecutive Hilbert indices map to
	// lattice points at L1 distance exactly 1.
	h := Hilbert{}
	for _, tc := range []struct{ rank, bits int }{{2, 5}, {3, 3}} {
		total := uint64(1) << uint(tc.rank*tc.bits)
		prev := h.Point(0, tc.rank, tc.bits)
		for idx := uint64(1); idx < total; idx++ {
			p := h.Point(idx, tc.rank, tc.bits)
			dist := 0
			for d := 0; d < tc.rank; d++ {
				dd := p[d] - prev[d]
				if dd < 0 {
					dd = -dd
				}
				dist += dd
			}
			if dist != 1 {
				t.Fatalf("rank %d: indices %d->%d jump L1 distance %d (%v -> %v)",
					tc.rank, idx-1, idx, dist, prev, p)
			}
			prev = p
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	for _, c := range []Curve{Morton{}, Hilbert{}} {
		c := c
		f := func(x, y, z uint16, rankSeed uint8) bool {
			rank := 2 + int(rankSeed)%2
			bits := 16
			p := geom.Point{int(x), int(y), 0}
			if rank == 3 {
				p[2] = int(z)
			}
			idx := c.Index(p, rank, bits)
			return c.Point(idx, rank, bits) == p
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestQuickMonotoneWithinCell(t *testing.T) {
	// Index must be < 2^(rank*bits).
	cfg := &quick.Config{MaxCount: 1000}
	for _, c := range []Curve{Morton{}, Hilbert{}} {
		c := c
		f := func(x, y, z uint16) bool {
			p := geom.Pt3(int(x%256), int(y%256), int(z%256))
			return c.Index(p, 3, 8) < 1<<24
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestMapperOrdersByLocality(t *testing.T) {
	domain := geom.Box2(0, 0, 31, 31)
	m := NewMapper(Hilbert{}, domain, 2)
	// Two nearby boxes and one far box; the far one should not sit between
	// the near ones after sorting.
	l := geom.BoxList{
		geom.Box2(28, 28, 31, 31),
		geom.Box2(0, 0, 3, 3),
		geom.Box2(4, 0, 7, 3),
	}
	m.Sort(l)
	if !(l[0].Lo == geom.Pt2(0, 0) || l[0].Lo == geom.Pt2(4, 0)) {
		t.Errorf("sorted order starts with %v, want a near-origin box", l[0])
	}
	if l[1].Lo == geom.Pt2(28, 28) {
		t.Error("far box interleaved between near boxes")
	}
}

func TestMapperRefinedBoxesNest(t *testing.T) {
	domain := geom.Box2(0, 0, 31, 31)
	m := NewMapper(Morton{}, domain, 2)
	coarse := geom.Box2(8, 8, 11, 11)
	fine := coarse.Refine(2) // level 1 overlay of the same region
	ci, fi := m.BoxIndex(coarse), m.BoxIndex(fine)
	if ci != fi {
		t.Errorf("coarse index %d != overlaying fine index %d", ci, fi)
	}
}

func TestMapperDeterministicSort(t *testing.T) {
	domain := geom.Box3(0, 0, 0, 63, 63, 63)
	m := NewMapper(Hilbert{}, domain, 2)
	r := rand.New(rand.NewSource(11))
	var l geom.BoxList
	for i := 0; i < 40; i++ {
		x, y, z := r.Intn(56), r.Intn(56), r.Intn(56)
		l = append(l, geom.Box3(x, y, z, x+7, y+7, z+7))
	}
	a, b := l.Clone(), l.Clone()
	m.Sort(a)
	m.Sort(b)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("Mapper.Sort not deterministic")
		}
	}
}

func TestMapperPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMapper should panic on empty domain")
		}
	}()
	NewMapper(Morton{}, geom.Box{Rank: 2, Lo: geom.Pt2(1, 1), Hi: geom.Pt2(0, 0)}, 2)
}
