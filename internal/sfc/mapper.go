package sfc

import (
	"samrpart/internal/geom"
)

// Mapper orders boxes of an adaptive grid hierarchy along a space-filling
// curve defined over the level-0 domain. Boxes on refined levels are
// coarsened to the base index space first, so grids that overlay the same
// coarse region land near each other on the curve — the inter-level locality
// GrACE's composite distribution preserves.
type Mapper struct {
	curve       Curve
	domain      geom.Box
	refineRatio int
	bits        int
}

// NewMapper builds a mapper for the given level-0 domain. refineRatio is the
// factor between successive levels (2 in the paper's experiments).
func NewMapper(curve Curve, domain geom.Box, refineRatio int) *Mapper {
	if domain.Empty() {
		panic("sfc: empty domain")
	}
	if refineRatio < 2 {
		panic("sfc: refine ratio must be >= 2")
	}
	maxExtent := 1
	for d := 0; d < domain.Rank; d++ {
		if n := domain.Size(d); n > maxExtent {
			maxExtent = n
		}
	}
	return &Mapper{
		curve:       curve,
		domain:      domain,
		refineRatio: refineRatio,
		bits:        BitsFor(maxExtent),
	}
}

// Curve returns the underlying space-filling curve.
func (m *Mapper) Curve() Curve { return m.curve }

// BoxIndex returns the curve position of a box: the SFC index of its
// centroid mapped to the level-0 index space, relative to the domain origin.
func (m *Mapper) BoxIndex(b geom.Box) uint64 {
	// Centroid on the box's own level.
	var c geom.Point
	for d := 0; d < b.Rank; d++ {
		c[d] = (b.Lo[d] + b.Hi[d]) / 2
	}
	// Coarsen to the base level.
	for lev := b.Level; lev > 0; lev-- {
		c = c.DivFloor(m.refineRatio)
	}
	// Shift into the domain-relative frame and clamp (boxes are expected to
	// nest inside the domain; clamping guards degenerate callers).
	c = c.Sub(m.domain.Lo)
	limit := 1<<uint(m.bits) - 1
	for d := 0; d < m.domain.Rank; d++ {
		if c[d] < 0 {
			c[d] = 0
		}
		if c[d] > limit {
			c[d] = limit
		}
	}
	return m.curve.Index(c, m.domain.Rank, m.bits)
}

// Sort orders the list in place by curve position, breaking ties by level
// then lower bound so the order is deterministic.
func (m *Mapper) Sort(l geom.BoxList) {
	l.SortBy(func(b geom.Box) int64 { return int64(m.BoxIndex(b)) })
}
