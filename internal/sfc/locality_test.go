package sfc

import (
	"testing"

	"samrpart/internal/geom"
)

func TestHilbertBeatsMortonSegmentSurface(t *testing.T) {
	// The partition-relevant locality property: when each node owns a
	// contiguous curve segment, Hilbert segments expose less ghost
	// surface per cell than Morton segments (at node counts that don't
	// align with the curves' power-of-two blocks — aligned counts give
	// both curves perfect blocks). Interestingly Morton wins the *mean
	// neighbor index gap*, which is why the surface metric, not the gap,
	// justifies GrACE's Hilbert choice.
	h2 := MeasureLocality(Hilbert{}, 2, 5, 7)
	m2 := MeasureLocality(Morton{}, 2, 5, 7)
	if h2.MeanSegmentSurface >= m2.MeanSegmentSurface {
		t.Errorf("2D: Hilbert surface %.3f not below Morton %.3f",
			h2.MeanSegmentSurface, m2.MeanSegmentSurface)
	}
	h3 := MeasureLocality(Hilbert{}, 3, 3, 5)
	m3 := MeasureLocality(Morton{}, 3, 3, 5)
	if h3.MeanSegmentSurface >= m3.MeanSegmentSurface {
		t.Errorf("3D: Hilbert surface %.3f not below Morton %.3f",
			h3.MeanSegmentSurface, m3.MeanSegmentSurface)
	}
}

func TestPowerOfTwoSegmentsArePerfectBlocks(t *testing.T) {
	// At power-of-two segment counts both curves split into exact blocks:
	// a 32x32 lattice over 8 segments gives 128-cell blocks with surface
	// 0.25 faces/cell for Hilbert (contiguous) — and the same for Morton.
	h := MeasureLocality(Hilbert{}, 2, 5, 8)
	m := MeasureLocality(Morton{}, 2, 5, 8)
	if h.MeanSegmentSurface != m.MeanSegmentSurface {
		t.Errorf("aligned split differs: %.3f vs %.3f",
			h.MeanSegmentSurface, m.MeanSegmentSurface)
	}
}

func TestMeasureLocalityGaps(t *testing.T) {
	for _, c := range []Curve{Hilbert{}, Morton{}} {
		s := MeasureLocality(c, 2, 4, 0)
		if s.MeanNeighborGap <= 0 || s.MaxNeighborGap == 0 {
			t.Errorf("%s: degenerate gap stats %+v", c.Name(), s)
		}
		if s.MeanSegmentSurface != 0 {
			t.Errorf("%s: segment surface computed without segments", c.Name())
		}
		// Mean gap is at least 1 (adjacent indices) and at most the
		// curve length.
		if s.MeanNeighborGap < 1 || s.MeanNeighborGap > 256 {
			t.Errorf("%s: mean gap %.1f out of range", c.Name(), s.MeanNeighborGap)
		}
	}
}

func TestSurfaceToVolume(t *testing.T) {
	// 4x4x4 box, ghost 1: halo = 6^3 - 4^3 = 152, interior 64.
	b := geom.Box3(0, 0, 0, 3, 3, 3)
	got := SurfaceToVolume(b, 1)
	want := (216.0 - 64.0) / 64.0
	if got != want {
		t.Errorf("SurfaceToVolume = %g, want %g", got, want)
	}
	// Bigger boxes have better ratios.
	big := SurfaceToVolume(geom.Box3(0, 0, 0, 15, 15, 15), 1)
	if big >= got {
		t.Error("larger box should have smaller surface-to-volume")
	}
}
