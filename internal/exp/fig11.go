package exp

import (
	"fmt"
	"io"

	"samrpart/internal/cluster"
	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

// Fig11Result reproduces Figure 11: dynamic load allocation by the
// system-sensitive partitioner when the system state is sensed once before
// the start and twice during the run, while a synthetic load generator
// varies the load on two of the four processors.
type Fig11Result struct {
	Trace *trace.RunTrace
}

// fig11Loads ramps background load up on processors 0 and 1 at different
// times during the run, the paper's "interesting load dynamics".
func fig11Loads(c *cluster.Cluster) {
	c.Node(0).AddLoad(cluster.Ramp{Start: 20, Rate: 0.01, Target: 0.65, MemTargetMB: 140})
	c.Node(1).AddLoad(cluster.Ramp{Start: 60, Rate: 0.015, Target: 0.5, MemTargetMB: 100})
}

// Fig11 runs 150 iterations (30 regrids at one regrid per 5 iterations)
// with sensing at iterations 50 and 100 plus the pre-start sweep.
func Fig11() (*Fig11Result, error) {
	tr, err := run(runConfig{
		name:        "fig11",
		nodes:       4,
		loads:       fig11Loads,
		partitioner: partition.NewHetero(),
		iterations:  150,
		regridEvery: 5,
		senseEvery:  50,
	})
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Trace: tr}, nil
}

// Render writes the per-regrid assignments, annotating the relative
// capacities whenever a sensing sweep refreshed them.
func (r *Fig11Result) Render(w io.Writer) error {
	s := trace.NewSeries(
		"Figure 11: dynamic load allocation (sensing before start + twice during run)",
		"Regrid", "Processor 0", "Processor 1", "Processor 2", "Processor 3")
	var prev []float64
	var annotations []string
	for i, rec := range r.Trace.Records {
		s.Add(float64(i+1), rec.Work[0], rec.Work[1], rec.Work[2], rec.Work[3])
		if prev == nil || !sameCaps(prev, rec.Caps) {
			annotations = append(annotations, fmt.Sprintf(
				"  regrid %d: capacities %.0f%% %.0f%% %.0f%% %.0f%%",
				i+1, rec.Caps[0]*100, rec.Caps[1]*100, rec.Caps[2]*100, rec.Caps[3]*100))
			prev = rec.Caps
		}
	}
	if err := s.Render(w); err != nil {
		return err
	}
	for _, a := range annotations {
		if _, err := fmt.Fprintln(w, a); err != nil {
			return err
		}
	}
	return nil
}

func sameCaps(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d > 1e-12 || d < -1e-12 {
			return false
		}
	}
	return true
}
