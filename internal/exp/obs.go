package exp

import "samrpart/internal/obs"

// obsRT is the observability runtime injected by cmd/experiments via
// SetObs. It stays nil by default, which keeps every study uninstrumented
// and bit-identical to the pre-observability behaviour.
var obsRT *obs.Runtime

// SetObs routes all subsequent studies' engine and SPMD runs through rt's
// metrics registry and event log. Pass nil to turn observability back off.
// The studies run sequentially, so a plain package variable suffices.
func SetObs(rt *obs.Runtime) { obsRT = rt }
