package exp

import (
	"bytes"
	"testing"
)

func TestElasticExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic experiment in -short mode")
	}
	res, err := Elastic(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	failStop, rejoin, shed := res.Rows[0], res.Rows[1], res.Rows[2]
	if failStop.EndMembers != 3 || failStop.LostShare == 0 {
		t.Errorf("fail-stop kept %d members (lost share %.2f), want a permanent loss",
			failStop.EndMembers, failStop.LostShare)
	}
	if rejoin.EndMembers != 4 || rejoin.Admissions != 1 {
		t.Errorf("rejoin ended with %d members, %d admissions, want 4 and 1",
			rejoin.EndMembers, rejoin.Admissions)
	}
	if shed.EndMembers != 4 {
		t.Errorf("rejoin+shed ended with %d members, want 4", shed.EndMembers)
	}
	if shed.Demotions == 0 {
		t.Error("rejoin+shed never demoted the slowed rank")
	}
	for _, row := range res.Rows {
		if !row.BitExact {
			t.Errorf("%s diverged from the fault-free solution", row.Scenario)
		}
	}
	if !res.CorruptionSurvived || res.Fallbacks == 0 {
		t.Errorf("corruption survival = %v with %d fallbacks, want survival",
			res.CorruptionSurvived, res.Fallbacks)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}
