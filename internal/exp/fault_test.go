package exp

import (
	"bytes"
	"testing"
)

func TestFaultRecoveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("fault experiment in -short mode")
	}
	res, err := FaultRecovery(16, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cluster) != 3 {
		t.Fatalf("cluster rows = %d, want 3", len(res.Cluster))
	}
	static, adaptive := res.Cluster[1], res.Cluster[2]
	if adaptive.ExecSec >= static.ExecSec {
		t.Errorf("adaptive (%.1fs) not faster than static (%.1fs) after the crash",
			adaptive.ExecSec, static.ExecSec)
	}
	if !res.BitExact {
		t.Error("recovered SPMD solution diverged from the fault-free run")
	}
	crashed := 0
	for _, r := range res.Ranks {
		if r.Crashed {
			crashed++
		} else if r.Recoveries != 1 {
			t.Errorf("rank %d recoveries = %d, want 1", r.Rank, r.Recoveries)
		}
	}
	if crashed != 1 {
		t.Errorf("%d crashed ranks, want 1", crashed)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}
