package exp

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"samrpart/internal/engine"
	"samrpart/internal/geom"
	"samrpart/internal/partition"
	"samrpart/internal/solver"
	"samrpart/internal/trace"
	"samrpart/internal/transport"
)

// FaultClusterRow is one virtual-cluster scenario of the fault study.
type FaultClusterRow struct {
	Scenario string
	ExecSec  float64
	Slowdown float64 // vs the fault-free adaptive run
	MovedMB  float64
	Senses   int
}

// FaultRankRow is one SPMD rank's recovery outcome.
type FaultRankRow struct {
	Rank         int
	Crashed      bool
	Recoveries   int
	RestoredFrom int
	Checkpoints  int
	Boxes        int
}

// FaultRecoveryResult combines the two halves of the fault study: the
// virtual-cluster reaction to a crashed node (adaptive vs static), and the
// real SPMD runtime's checkpoint-based rank recovery with a bit-exactness
// check against a fault-free run.
type FaultRecoveryResult struct {
	Cluster  []FaultClusterRow
	Ranks    []FaultRankRow
	BitExact bool
	Cells    int
}

// FaultRecovery runs both halves with a crash of rank/node `crashRank` at
// iteration `crashIter`.
func FaultRecovery(iters, crashRank, crashIter int) (*FaultRecoveryResult, error) {
	res := &FaultRecoveryResult{}

	// Half 1: virtual cluster. A 4-node run where the node dies under
	// saturating external load; the adaptive configuration re-senses and
	// repartitions, the static one keeps the dead node's share assigned.
	scenarios := []struct {
		name       string
		senseEvery int
		fault      *engine.FaultPlan
	}{
		{"fault-free (adaptive)", 5, nil},
		{"node crash, static", 0, &engine.FaultPlan{Rank: crashRank, Iter: crashIter}},
		{"node crash, adaptive", 5, &engine.FaultPlan{Rank: crashRank, Iter: crashIter}},
	}
	var base float64
	for _, sc := range scenarios {
		clus, err := NewCluster(4)
		if err != nil {
			return nil, err
		}
		cfg := engine.Config{
			Name:        "fault/" + sc.name,
			Hierarchy:   RM3DHierarchy(),
			App:         engine.NewRM3DOracle(),
			Partitioner: partition.NewHetero(),
			Iterations:  iters,
			RegridEvery: 5,
			SenseEvery:  sc.senseEvery,
			Fault:       sc.fault,
			Obs:         obsRT,
		}
		e, err := engine.New(cfg, clus)
		if err != nil {
			return nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = tr.ExecTime
		}
		row := FaultClusterRow{
			Scenario: sc.name,
			ExecSec:  tr.ExecTime,
			MovedMB:  tr.MovedBytes / 1e6,
			Senses:   tr.Senses,
		}
		if base > 0 {
			row.Slowdown = tr.ExecTime / base
		}
		res.Cluster = append(res.Cluster, row)
	}

	// Half 2: the SPMD runtime. Four ranks over the in-process transport;
	// the crashed rank goes silent mid-run, survivors detect it via the
	// heartbeat round, re-partition, restore from the latest stable
	// checkpoint and finish. The composed solution must be bit-exact
	// identical to a fault-free run.
	spmdCfg := func(dir string) engine.SPMDConfig {
		return engine.SPMDConfig{
			Domain:       geom.Box2(0, 0, 31, 31),
			TileSize:     8,
			Kernel:       solver.NewAdvection2D(1.0, 0.5, 0.3, 0.3, 0.1),
			BaseGrid:     solver.UniformGrid(1.0 / 32),
			Partitioner:  partition.NewHetero(),
			CapsAt:       func(int) []float64 { return []float64{0.25, 0.25, 0.25, 0.25} },
			Iterations:   iters,
			RepartEvery:  4,
			RecvDeadline: 500 * time.Millisecond,
			Obs:          obsRT,
			FT: engine.FTConfig{
				Enabled:         true,
				CheckpointEvery: 4,
				CheckpointDir:   dir,
				SyncCheckpoint:  true,
			},
		}
	}
	runGroup := func(cfg engine.SPMDConfig, faulty bool) ([]*engine.SPMDResult, error) {
		eps, err := transport.NewGroup(4)
		if err != nil {
			return nil, err
		}
		if faulty {
			for i, ep := range eps {
				eps[i] = transport.NewFaulty(ep, transport.FaultSpec{})
			}
		}
		results := make([]*engine.SPMDResult, len(eps))
		errs := make([]error, len(eps))
		var wg sync.WaitGroup
		for r := range eps {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[r], errs[r] = engine.RunSPMDRank(eps[r], cfg)
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	compose := func(results []*engine.SPMDResult) map[geom.Point]float64 {
		field := map[geom.Point]float64{}
		for _, r := range results {
			if r == nil || r.Crashed {
				continue
			}
			for _, p := range r.Patches {
				p.EachInterior(func(pt geom.Point) { field[pt] = p.At(0, pt) })
			}
		}
		return field
	}

	refDir, err := os.MkdirTemp("", "samrpart-fault-ref")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(refDir)
	ref, err := runGroup(spmdCfg(refDir), false)
	if err != nil {
		return nil, err
	}
	faultDir, err := os.MkdirTemp("", "samrpart-fault-run")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(faultDir)
	cfg := spmdCfg(faultDir)
	cfg.Fault = &engine.FaultPlan{Rank: crashRank % 4, Iter: crashIter}
	results, err := runGroup(cfg, true)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		res.Ranks = append(res.Ranks, FaultRankRow{
			Rank:         r.Rank,
			Crashed:      r.Crashed,
			Recoveries:   r.Recoveries,
			RestoredFrom: r.RestoredFrom,
			Checkpoints:  r.Checkpoints,
			Boxes:        len(r.OwnedBoxes),
		})
	}
	want := compose(ref)
	got := compose(results)
	res.Cells = len(want)
	res.BitExact = len(got) == len(want)
	if res.BitExact {
		for pt, w := range want {
			if got[pt] != w {
				res.BitExact = false
				break
			}
		}
	}
	return res, nil
}

// Render writes both fault-study tables.
func (r *FaultRecoveryResult) Render(w io.Writer) error {
	tab := trace.NewTable(
		"Node crash on the virtual cluster: adaptive repartitioning vs static",
		"Scenario", "Exec time (s)", "Slowdown", "Moved (MB)", "Senses")
	for _, row := range r.Cluster {
		tab.AddF(row.Scenario, row.ExecSec, row.Slowdown, row.MovedMB, row.Senses)
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	tab = trace.NewTable(
		"SPMD rank crash: heartbeat detection + checkpoint recovery",
		"Rank", "Crashed", "Recoveries", "Restored from", "Ckpt shards", "Boxes")
	for _, row := range r.Ranks {
		tab.AddF(row.Rank, row.Crashed, row.Recoveries, row.RestoredFrom,
			row.Checkpoints, row.Boxes)
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	status := "IDENTICAL (bit-exact)"
	if !r.BitExact {
		status = "DIVERGED"
	}
	_, err := fmt.Fprintf(w, "Recovered solution vs fault-free run over %d cells: %s\n\n",
		r.Cells, status)
	return err
}
