package exp

import (
	"strings"
	"testing"
)

// TestWeakScalingOracleAndDelta runs the sweep to 256 virtual ranks (the
// full 4096-rank ladder runs nightly) and checks the deterministic
// properties: every row's distributed plans match the centralized oracle
// bit-for-bit, and the owner-delta broadcast beats the full table.
func TestWeakScalingOracleAndDelta(t *testing.T) {
	res, err := WeakScaling(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (16, 64, 256)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.OracleOK {
			t.Errorf("%d ranks: distributed plans diverged from the oracle", row.Ranks)
		}
		if row.DeltaKB >= row.FullKB {
			t.Errorf("%d ranks: delta broadcast %.3f KB not below full %.3f KB",
				row.Ranks, row.DeltaKB, row.FullKB)
		}
		if row.Boxes < weakBoxesPerRank*row.Ranks {
			t.Errorf("%d ranks: only %d boxes, want >= %d", row.Ranks, row.Boxes,
				weakBoxesPerRank*row.Ranks)
		}
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 4 {
		t.Errorf("CSV has %d lines, want header + 3 rows", lines)
	}
	var tab strings.Builder
	if err := res.Render(&tab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "OK") {
		t.Error("rendered table missing oracle status")
	}
}

// TestWeakScalingStage2Oracle runs the stage-2 decentralization sweep to
// 256 virtual ranks (the 4096 ladder runs nightly) and checks that the
// assembled group slices reproduce the replicated partition bit-for-bit
// and that group-local slicing gets relatively cheaper as groups multiply.
func TestWeakScalingStage2Oracle(t *testing.T) {
	res, err := WeakScalingStage2(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (16, 64, 256)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.OracleOK {
			t.Errorf("%d ranks: assembled slices diverged from the replicated oracle", row.Ranks)
		}
		if row.Groups != (row.Ranks+res.GroupSize-1)/res.GroupSize {
			t.Errorf("%d ranks: %d groups with group size %d", row.Ranks, row.Groups, res.GroupSize)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Speedup < 4 {
		t.Errorf("256-rank stage-2 speedup %.1fx below the 4x floor the CI bench gates", last.Speedup)
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 4 {
		t.Errorf("CSV has %d lines, want header + 3 rows", lines)
	}
	var tab strings.Builder
	if err := res.Render(&tab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "Group-local") {
		t.Error("rendered table missing group-local column")
	}
}
