package exp

import (
	"fmt"
	"io"

	"samrpart/internal/amr"
	"samrpart/internal/cluster"
	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

// Fig8to10Result reproduces Figures 8, 9 and 10: per-regrid work-load
// assignments under the default (Fig 8) and system-sensitive (Fig 9)
// partitioners with relative capacities fixed at 16/19/31/34%, and the
// resulting per-regrid load imbalance of both schemes (Fig 10).
type Fig8to10Result struct {
	Caps    []float64
	Hetero  *trace.RunTrace
	Default *trace.RunTrace
}

// fig810Hierarchy coarsens the clustering granularity relative to the
// Fig 7 runs: bigger minimum boxes make the splitting constraints bind, so
// the residual imbalance the paper attributes to them (up to ~40%) is
// visible.
func fig810Hierarchy() amr.Config {
	h := RM3DHierarchy()
	h.Cluster.MinSide = 16
	h.Cluster.MaxSide = 0
	return h
}

// Fig8to10 runs both partitioners for 8 regrids (regrid every 5
// iterations) at the paper's fixed capacities.
func Fig8to10() (*Fig8to10Result, error) {
	caps := PaperCapacities()
	hier := fig810Hierarchy()
	mkRun := func(name string, p partition.Partitioner) (*trace.RunTrace, error) {
		return run(runConfig{
			name:  name,
			nodes: 4,
			loads: func(c *cluster.Cluster) {
				if err := FixedCapacityLoads(c, caps); err != nil {
					panic(err)
				}
			},
			partitioner: p,
			iterations:  40,
			regridEvery: 5,
			hierarchy:   &hier,
		})
	}
	hp := partition.NewHetero()
	hp.Constraints.MinBoxSize = 24
	dp := partition.NewComposite(2)
	dp.Constraints.MinBoxSize = 24
	ht, err := mkRun("ACEHeterogeneous", hp)
	if err != nil {
		return nil, err
	}
	dt, err := mkRun("ACEComposite", dp)
	if err != nil {
		return nil, err
	}
	return &Fig8to10Result{Caps: caps, Hetero: ht, Default: dt}, nil
}

// Render writes the three figures as data tables.
func (r *Fig8to10Result) Render(w io.Writer) error {
	renderAssignments := func(title string, tr *trace.RunTrace) error {
		s := trace.NewSeries(title, "Regrid",
			"Processor 0", "Processor 1", "Processor 2", "Processor 3")
		for _, rec := range tr.Records {
			s.Add(float64(rec.Regrid), rec.Work[0], rec.Work[1], rec.Work[2], rec.Work[3])
		}
		return s.Render(w)
	}
	if _, err := fmt.Fprintf(w, "Relative capacities: %.0f%% %.0f%% %.0f%% %.0f%%\n\n",
		r.Caps[0]*100, r.Caps[1]*100, r.Caps[2]*100, r.Caps[3]*100); err != nil {
		return err
	}
	if err := renderAssignments(
		"Figure 8: work-load assignment, default partitioner (ACEComposite)", r.Default); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := renderAssignments(
		"Figure 9: work-load assignment, system-sensitive partitioner (ACEHeterogeneous)", r.Hetero); err != nil {
		return err
	}
	imb := trace.NewSeries(
		"\nFigure 10: max load imbalance per regrid (%)",
		"Regrid", "non system-sensitive", "system-sensitive")
	for i := range r.Default.Records {
		imb.Add(float64(i+1),
			r.Default.Records[i].MaxImbalance(),
			r.Hetero.Records[i].MaxImbalance())
	}
	return imb.Render(w)
}
