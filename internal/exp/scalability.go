package exp

import (
	"io"

	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

// ScalabilityRow is one cluster size of the scaling study.
type ScalabilityRow struct {
	Nodes      int
	ExecSec    float64
	Speedup    float64
	Efficiency float64
}

// ScalabilityResult is a strong-scaling study of the runtime on an
// *unloaded* cluster: the same RM3D workload on P = 1..32 identical idle
// nodes. It isolates the parallelization overheads (ghost communication,
// sensing, regridding) from the heterogeneity effects the paper studies —
// the "enabling scalable parallel implementations" context of the GrACE
// line of work.
type ScalabilityResult struct {
	Rows []ScalabilityRow
}

// Scalability runs the strong-scaling sweep.
func Scalability() (*ScalabilityResult, error) {
	res := &ScalabilityResult{}
	var t1 float64
	for _, nodes := range []int{1, 2, 4, 8, 16, 32} {
		tr, err := run(runConfig{
			name:        "scaling",
			nodes:       nodes,
			partitioner: partition.NewSFCHetero(2),
			iterations:  100,
			regridEvery: 5,
		})
		if err != nil {
			return nil, err
		}
		if nodes == 1 {
			t1 = tr.ExecTime
		}
		row := ScalabilityRow{Nodes: nodes, ExecSec: tr.ExecTime}
		if tr.ExecTime > 0 {
			row.Speedup = t1 / tr.ExecTime
			row.Efficiency = row.Speedup / float64(nodes)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the scaling table.
func (r *ScalabilityResult) Render(w io.Writer) error {
	tab := trace.NewTable(
		"Strong scaling on an idle homogeneous cluster (RM3D workload)",
		"P", "Exec time (s)", "Speedup", "Parallel efficiency")
	for _, row := range r.Rows {
		tab.AddF(row.Nodes, row.ExecSec, row.Speedup, row.Efficiency)
	}
	return tab.Render(w)
}
