package exp

import (
	"strings"
	"testing"
)

// TestTraceOverheadShape runs the study at the minimum iteration count and
// checks its structural claims: all four apps present, every run bit-exact,
// the traced wire strictly larger (the piggybacked contexts), and a
// non-empty trace log per app.
func TestTraceOverheadShape(t *testing.T) {
	res, err := TraceOverhead(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	apps := map[string]bool{}
	for _, row := range res.Rows {
		apps[row.App] = true
		if !row.BitExact {
			t.Errorf("%s: traced run not bit-exact with untraced", row.App)
		}
		if row.TracedWireBytes <= row.WireBytes {
			t.Errorf("%s: traced wire %d <= untraced %d", row.App, row.TracedWireBytes, row.WireBytes)
		}
		if row.LogBytes <= 0 || row.Records <= 0 {
			t.Errorf("%s: empty trace log (%d bytes, %d records)", row.App, row.LogBytes, row.Records)
		}
		if row.WirePct() <= 0 {
			t.Errorf("%s: wire overhead %.3f%% not positive", row.App, row.WirePct())
		}
	}
	for _, name := range []string{"advect2d", "muscl2d", "buckley", "euler3d"} {
		if !apps[name] {
			t.Errorf("missing app %s", name)
		}
	}

	var out strings.Builder
	if err := res.Render(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Tracing overhead", "euler3d", "Bit-exact"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("render missing %q:\n%s", want, out.String())
		}
	}
}
