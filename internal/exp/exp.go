// Package exp defines the paper's experiments — every table and figure of
// the evaluation section — as reusable, deterministic functions over the
// virtual cluster. cmd/experiments renders them; bench_test.go regenerates
// them under `go test -bench`; the package's own tests assert the *shape*
// criteria recorded in EXPERIMENTS.md (who wins, by roughly what factor,
// where the optima fall).
package exp

import (
	"fmt"

	"samrpart/internal/amr"
	"samrpart/internal/cluster"
	"samrpart/internal/engine"
	"samrpart/internal/geom"
	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

// RM3DDomain is the paper's base grid: 128x32x32.
func RM3DDomain() geom.Box { return geom.Box3(0, 0, 0, 127, 31, 31) }

// RM3DHierarchy is the paper's hierarchy: 3 levels of factor-2 refinement.
func RM3DHierarchy() amr.Config {
	return amr.Config{
		Domain:        RM3DDomain(),
		RefineRatio:   2,
		MaxLevels:     3,
		NestingBuffer: 1,
		Cluster:       amr.ClusterOptions{Efficiency: 0.7, MinSide: 4, MaxSide: 32},
	}
}

// NewCluster builds an n-node cluster of the paper's hardware (identical
// Linux workstations on fast Ethernet; heterogeneity comes from load).
func NewCluster(n int) (*cluster.Cluster, error) {
	return cluster.New(cluster.Uniform(n, cluster.LinuxWorkstation()), cluster.DefaultParams())
}

// PaperLoadScript applies the canonical static background-load pattern:
// every second node carries synthetic load, with the heavier load levels
// appearing from node 8 up, so heterogeneity grows with cluster size (the
// paper attributes its larger improvements at P>=16 to exactly that).
func PaperLoadScript(c *cluster.Cluster) {
	targets := []float64{0.3, 0.35, 0.3, 0.35, 0.68, 0.72, 0.68, 0.72}
	for k := 0; k < c.NumNodes(); k += 2 {
		t := targets[(k/2)%len(targets)]
		c.Node(k).AddLoad(cluster.Step{CPU: t, MemMB: 150 * t})
	}
}

// FixedCapacityLoads loads the nodes so the equal-weight capacity metric
// reproduces the given target capacities exactly (the paper's Figures 8-10
// fix C = 16%, 19%, 31%, 34%). It assumes equal per-node bandwidth; CPU and
// memory fractions are set to (3·C_k − 1/K)/2 each.
func FixedCapacityLoads(c *cluster.Cluster, caps []float64) error {
	k := float64(c.NumNodes())
	if len(caps) != c.NumNodes() {
		return fmt.Errorf("exp: %d capacities for %d nodes", len(caps), c.NumNodes())
	}
	fracs := make([]float64, len(caps))
	maxFrac := 0.0
	for i, ck := range caps {
		f := (3*ck - 1/k) / 2
		if f <= 0 {
			return fmt.Errorf("exp: capacity %g too small to realize with equal weights", ck)
		}
		fracs[i] = f
		if f > maxFrac {
			maxFrac = f
		}
	}
	// Scale so the largest node is 90% available.
	scale := 0.9 / maxFrac
	for i, f := range fracs {
		avail := f * scale
		node := c.Node(i)
		cpuLoad := 1 - avail
		memFree := node.Spec.MemoryMB * avail
		node.ClearLoad()
		node.AddLoad(cluster.Step{CPU: cpuLoad, MemMB: node.Spec.MemoryMB - memFree})
	}
	return nil
}

// PaperCapacities are the four-node relative capacities used throughout the
// paper's controlled experiments.
func PaperCapacities() []float64 { return []float64{0.16, 0.19, 0.31, 0.34} }

// runConfig bundles one engine run.
type runConfig struct {
	name        string
	nodes       int
	loads       func(*cluster.Cluster)
	partitioner partition.Partitioner
	iterations  int
	regridEvery int
	senseEvery  int
	hierarchy   *amr.Config // nil = RM3DHierarchy
}

// run executes one configuration from a cold cluster.
func run(rc runConfig) (*trace.RunTrace, error) {
	clus, err := NewCluster(rc.nodes)
	if err != nil {
		return nil, err
	}
	if rc.loads != nil {
		rc.loads(clus)
	}
	h := RM3DHierarchy()
	if rc.hierarchy != nil {
		h = *rc.hierarchy
	}
	cfg := engine.Config{
		Name:        rc.name,
		Hierarchy:   h,
		App:         engine.NewRM3DOracle(),
		Partitioner: rc.partitioner,
		Iterations:  rc.iterations,
		RegridEvery: rc.regridEvery,
		SenseEvery:  rc.senseEvery,
		Obs:         obsRT,
	}
	e, err := engine.New(cfg, clus)
	if err != nil {
		return nil, err
	}
	return e.Run()
}
