package exp

import (
	"io"

	"samrpart/internal/cluster"
	"samrpart/internal/engine"
	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

// MixedHardwareResult covers the other axis of heterogeneity the paper's
// title promises: *hardware* heterogeneity. The cluster mixes two
// workstation generations — full-speed nodes and half-speed, half-memory
// ones — with no background load at all, so the capacity skew is static and
// purely architectural. The system-sensitive partitioner must discover it
// through the same sensing path (relative CPU availability never differs;
// the monitor reports absolute speed through the effective measurements).
type MixedHardwareResult struct {
	HeteroSec      float64
	DefaultSec     float64
	ImprovementPct float64
	Caps           []float64
}

// oldWorkstation is the previous hardware generation: half the speed and
// memory of cluster.LinuxWorkstation, same network.
func oldWorkstation() cluster.NodeSpec {
	return cluster.NodeSpec{SpeedMFlops: 150, MemoryMB: 128, BandwidthMBps: 12.5}
}

// MixedHardware runs the RM3D workload on 8 nodes: 4 current-generation and
// 4 previous-generation machines.
func MixedHardware() (*MixedHardwareResult, error) {
	specs := cluster.Uniform(8, cluster.LinuxWorkstation())
	for k := 4; k < 8; k++ {
		old := oldWorkstation()
		old.Name = specs[k].Name
		specs[k] = old
	}
	runOne := func(p partition.Partitioner) (*trace.RunTrace, []float64, error) {
		clus, err := cluster.New(specs, cluster.DefaultParams())
		if err != nil {
			return nil, nil, err
		}
		// CPU *availability* is 1.0 on every idle node; hardware speed
		// enters through monitor.ClusterProber, which scales availability
		// by the node's benchmark speed relative to the fastest machine.
		e, err := engine.New(engine.Config{
			Name:        "mixed-hw/" + p.Name(),
			Hierarchy:   RM3DHierarchy(),
			App:         engine.NewRM3DOracle(),
			Partitioner: p,
			Iterations:  100,
			RegridEvery: 5,
			Obs:         obsRT,
		}, clus)
		if err != nil {
			return nil, nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, nil, err
		}
		return tr, e.Capacities(), nil
	}
	ht, caps, err := runOne(partition.NewHetero())
	if err != nil {
		return nil, err
	}
	dt, _, err := runOne(partition.NewComposite(2))
	if err != nil {
		return nil, err
	}
	return &MixedHardwareResult{
		HeteroSec:      ht.ExecTime,
		DefaultSec:     dt.ExecTime,
		ImprovementPct: (dt.ExecTime - ht.ExecTime) / dt.ExecTime * 100,
		Caps:           caps,
	}, nil
}

// Render writes the comparison.
func (r *MixedHardwareResult) Render(w io.Writer) error {
	tab := trace.NewTable(
		"Mixed hardware generations (4 fast + 4 half-speed nodes, no load)",
		"Partitioner", "Exec time (s)")
	tab.AddF("system-sensitive", r.HeteroSec)
	tab.AddF("default", r.DefaultSec)
	tab.AddF("improvement (%)", r.ImprovementPct)
	return tab.Render(w)
}
