package exp

import (
	"fmt"
	"io"
	"sync"

	"samrpart/internal/capacity"
	"samrpart/internal/engine"
	"samrpart/internal/geom"
	"samrpart/internal/partition"
	"samrpart/internal/solver"
	"samrpart/internal/trace"
	"samrpart/internal/transport"
)

// MovementRow is one configuration of the migration-cost study.
type MovementRow struct {
	Scenario     string
	MigratedKB   float64
	RetainedKB   float64
	MigratedPct  float64 // migrated / (migrated + retained)
	MsgsSent     int64
	MaxImbalance float64 // of the post-shift assignment, percent
	L1Sum        float64
}

// MovementResult measures what movement-aware repartitioning saves. The
// capacity vector rotates across the nodes mid-run — the classic dynamic-load
// case where a capacity-sorted partitioner reproduces the same geometric
// groups under permuted labels — and the study compares the SPMD runtime's
// actual migration traffic with the owner-affinity remap on and off. Balance
// must be identical in both rows; only the movement may differ.
type MovementResult struct {
	Rows []MovementRow
	// BitExact reports that both configurations finished with identical
	// solutions (the remap relabels ownership, never values).
	BitExact bool
	Cells    int
}

// movementConfig is the shared run shape: 36 tiles across 3 ranks, one
// scheduled repartition at iteration 8 where the capacity vector rotates.
func movementConfig(iters int, noRemap bool) engine.SPMDConfig {
	return engine.SPMDConfig{
		Domain:      geom.Box2(0, 0, 47, 47),
		TileSize:    8,
		Kernel:      solver.NewAdvection2D(1.0, 0.5, 0.3, 0.3, 0.1),
		BaseGrid:    solver.UniformGrid(1.0 / 48),
		Partitioner: partition.NewHetero(),
		CapsAt: func(iter int) []float64 {
			if iter >= 8 {
				return []float64{0.375, 0.375, 0.25}
			}
			return []float64{0.25, 0.375, 0.375}
		},
		Iterations:      iters,
		RepartEvery:     8,
		NoAffinityRemap: noRemap,
		Obs:             obsRT,
	}
}

// Movement runs the study.
func Movement(iters int) (*MovementResult, error) {
	res := &MovementResult{}
	fields := map[string]map[geom.Point]float64{}
	for _, sc := range []struct {
		name    string
		noRemap bool
	}{
		{"repartition, affinity remap", false},
		{"repartition, no remap", true},
	} {
		cfg := movementConfig(iters, sc.noRemap)
		eps, err := transport.NewGroup(3)
		if err != nil {
			return nil, err
		}
		results := make([]*engine.SPMDResult, len(eps))
		errs := make([]error, len(eps))
		var wg sync.WaitGroup
		for r := range eps {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[r], errs[r] = engine.RunSPMDRank(eps[r], cfg)
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		row := MovementRow{Scenario: sc.name}
		field := map[geom.Point]float64{}
		work := make([]float64, len(eps))
		for _, r := range results {
			row.MigratedKB += float64(r.MigratedBytes) / 1e3
			row.RetainedKB += float64(r.RetainedBytes) / 1e3
			row.MsgsSent += r.MsgsSent
			row.L1Sum += r.L1Sum
			work[r.Rank] = float64(r.OwnedBoxes.TotalCells())
			for _, p := range r.Patches {
				p.EachInterior(func(pt geom.Point) { field[pt] = p.At(0, pt) })
			}
		}
		if tot := row.MigratedKB + row.RetainedKB; tot > 0 {
			row.MigratedPct = row.MigratedKB / tot * 100
		}
		// Post-shift balance, measured against the rotated capacity vector.
		caps := cfg.CapsAt(iters)
		total := 0.0
		for _, w := range work {
			total += w
		}
		ideal := make([]float64, len(caps))
		for k, c := range caps {
			ideal[k] = total * c
		}
		row.MaxImbalance = capacity.MaxImbalance(work, ideal)
		res.Rows = append(res.Rows, row)
		fields[sc.name] = field
	}
	withRemap := fields["repartition, affinity remap"]
	without := fields["repartition, no remap"]
	res.Cells = len(withRemap)
	res.BitExact = len(withRemap) == len(without)
	if res.BitExact {
		for pt, v := range without {
			if withRemap[pt] != v {
				res.BitExact = false
				break
			}
		}
	}
	return res, nil
}

// Render writes the migration-cost table.
func (r *MovementResult) Render(w io.Writer) error {
	tab := trace.NewTable(
		"Migration cost of a mid-run capacity rotation (3 ranks, 36 tiles)",
		"Scenario", "Migrated (KB)", "Retained (KB)", "Migrated (%)",
		"Msgs sent", "Max imbalance (%)")
	for _, row := range r.Rows {
		tab.AddF(row.Scenario, row.MigratedKB, row.RetainedKB, row.MigratedPct,
			row.MsgsSent, row.MaxImbalance)
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	status := "IDENTICAL (bit-exact)"
	if !r.BitExact {
		status = "DIVERGED"
	}
	_, err := fmt.Fprintf(w, "Solutions with and without remap over %d cells: %s\n\n",
		r.Cells, status)
	return err
}
