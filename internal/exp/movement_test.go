package exp

import (
	"io"
	"math"
	"testing"
)

// TestMovementRemapSavesMigration pins the acceptance criterion of the
// movement-aware repartitioning: on the capacity-rotation scenario the
// affinity remap strictly reduces migrated bytes, leaves the post-shift
// balance unchanged, and both runs finish with the identical solution.
func TestMovementRemapSavesMigration(t *testing.T) {
	res, err := Movement(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	remap, plain := res.Rows[0], res.Rows[1]
	if remap.MigratedKB <= 0 || plain.MigratedKB <= 0 {
		t.Fatalf("no migration happened (remap %.1f KB, plain %.1f KB): the rotation scenario is broken",
			remap.MigratedKB, plain.MigratedKB)
	}
	if remap.MigratedKB >= plain.MigratedKB {
		t.Errorf("affinity remap did not reduce migration: %.1f KB >= %.1f KB",
			remap.MigratedKB, plain.MigratedKB)
	}
	if math.Abs(remap.MaxImbalance-plain.MaxImbalance) > 1e-9 {
		t.Errorf("remap changed balance: %.6f%% vs %.6f%%", remap.MaxImbalance, plain.MaxImbalance)
	}
	if !res.BitExact {
		t.Error("solutions diverged between remap on and off")
	}
	if res.Cells != 48*48 {
		t.Errorf("composed %d cells, want %d", res.Cells, 48*48)
	}
	if err := res.Render(io.Discard); err != nil {
		t.Fatal(err)
	}
}
