package exp

import (
	"math"
	"strings"
	"testing"

	"samrpart/internal/capacity"
)

// These tests assert the reproduction's shape criteria (EXPERIMENTS.md):
// who wins, by roughly what factor, and where optima fall — not absolute
// seconds, which belong to the authors' testbed.

func TestFixedCapacityLoads(t *testing.T) {
	clus, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	caps := PaperCapacities()
	if err := FixedCapacityLoads(clus, caps); err != nil {
		t.Fatal(err)
	}
	ms := make([]capacity.Measurement, 4)
	for k := 0; k < 4; k++ {
		n := clus.Node(k)
		ms[k] = capacity.Measurement{
			CPUAvail:      n.CPUAvail(0),
			FreeMemoryMB:  n.FreeMemoryMB(0),
			BandwidthMBps: n.Bandwidth(0),
		}
	}
	got, err := capacity.Relative(ms, capacity.EqualWeights())
	if err != nil {
		t.Fatal(err)
	}
	for k := range caps {
		if math.Abs(got[k]-caps[k]) > 0.005 {
			t.Errorf("C_%d = %.3f, want %.3f", k, got[k], caps[k])
		}
	}
	// Mismatched length rejected.
	if err := FixedCapacityLoads(clus, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Unrealizably small capacity rejected.
	if err := FixedCapacityLoads(clus, []float64{0.01, 0.33, 0.33, 0.33}); err == nil {
		t.Error("unrealizable capacity accepted")
	}
}

func TestFig8to10Shapes(t *testing.T) {
	r, err := Fig8to10()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hetero.Records) != 8 || len(r.Default.Records) != 8 {
		t.Fatalf("want 8 regrids, got %d/%d", len(r.Hetero.Records), len(r.Default.Records))
	}
	for i, rec := range r.Hetero.Records {
		// (b) Hetero assignments track capacities: work ordered like caps
		// and each node within 25% of its share.
		for k := 0; k < 3; k++ {
			if rec.Work[k] > rec.Work[k+1]*1.05 {
				t.Errorf("regrid %d: hetero work not capacity-ordered: %v", i+1, rec.Work)
			}
		}
		if imb := rec.MaxImbalance(); imb > 40 {
			t.Errorf("regrid %d: hetero imbalance %.1f%% above the paper's 40%% bound", i+1, imb)
		}
	}
	for i, rec := range r.Default.Records {
		// Default assigns near-equal work irrespective of capacity.
		mean := 0.0
		for _, w := range rec.Work {
			mean += w
		}
		mean /= 4
		for k, w := range rec.Work {
			if math.Abs(w-mean)/mean > 0.25 {
				t.Errorf("regrid %d: default node %d deviates %.0f%% from equal",
					i+1, k, math.Abs(w-mean)/mean*100)
			}
		}
		// (c) Default imbalance far above hetero's.
		if rec.MaxImbalance() < 2*r.Hetero.Records[i].MaxImbalance() {
			t.Errorf("regrid %d: default imbalance %.1f%% not well above hetero %.1f%%",
				i+1, rec.MaxImbalance(), r.Hetero.Records[i].MaxImbalance())
		}
	}
	// Render sanity.
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 8", "Figure 9", "Figure 10", "16% 19% 31% 34%"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig11Adapts(t *testing.T) {
	r, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	recs := r.Trace.Records
	if len(recs) < 30 {
		t.Fatalf("want >= 30 regrids, got %d", len(recs))
	}
	if r.Trace.Senses != 3 {
		t.Errorf("senses = %d, want 3 (once before + twice during)", r.Trace.Senses)
	}
	// Early: equal capacities -> near-equal assignment.
	first := recs[0]
	if math.Abs(first.Work[0]-first.Work[3]) > 0.05*first.Work[3] {
		t.Errorf("first regrid not equal: %v", first.Work)
	}
	// Late: node 0 loaded -> smallest share.
	last := recs[len(recs)-1]
	if last.Work[0] >= last.Work[3]*0.8 {
		t.Errorf("allocation did not adapt to load on node 0: %v", last.Work)
	}
	// Capacities changed across the samples.
	if sameCaps(recs[0].Caps, last.Caps) {
		t.Error("capacities never changed")
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "capacities") {
		t.Error("render missing capacity annotations")
	}
}

func TestMixedHardwareShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-hardware run in short mode")
	}
	r, err := MixedHardware()
	if err != nil {
		t.Fatal(err)
	}
	// Architectural skew alone must give the system-sensitive scheme a
	// clear win, with fast nodes holding larger capacities.
	if r.ImprovementPct < 5 {
		t.Errorf("improvement %.1f%% too small for a 2x speed skew", r.ImprovementPct)
	}
	if r.Caps[0] <= r.Caps[7] {
		t.Errorf("fast node capacity %.3f not above slow node %.3f", r.Caps[0], r.Caps[7])
	}
}

func TestAblationMemoryWeightsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-weights ablation in short mode")
	}
	r, err := AblationMemoryWeights()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, row := range r.Rows {
		byName[row.Variant] = row.ExecSec
	}
	cb := byName["compute-biased (.6,.2,.2)"]
	mb := byName["memory-biased (.2,.6,.2)"]
	eq := byName["equal (1/3,1/3,1/3)"]
	// §8: on a memory-intensive workload, raising w_m pays. The ordering
	// must be memory-biased < equal < compute-biased.
	if !(mb < eq && eq < cb) {
		t.Errorf("weights ordering wrong: mem %.1f, equal %.1f, cpu %.1f", mb, eq, cb)
	}
	if (cb-mb)/cb < 0.15 {
		t.Errorf("memory-aware gain only %.1f%%", (cb-mb)/cb*100)
	}
}
