package exp

import (
	"math"
	"strings"
	"testing"

	"samrpart/internal/capacity"
)

// These tests assert the reproduction's shape criteria (EXPERIMENTS.md):
// who wins, by roughly what factor, and where optima fall — not absolute
// seconds, which belong to the authors' testbed.

func TestFixedCapacityLoads(t *testing.T) {
	clus, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	caps := PaperCapacities()
	if err := FixedCapacityLoads(clus, caps); err != nil {
		t.Fatal(err)
	}
	ms := make([]capacity.Measurement, 4)
	for k := 0; k < 4; k++ {
		n := clus.Node(k)
		ms[k] = capacity.Measurement{
			CPUAvail:      n.CPUAvail(0),
			FreeMemoryMB:  n.FreeMemoryMB(0),
			BandwidthMBps: n.Bandwidth(0),
		}
	}
	got, err := capacity.Relative(ms, capacity.EqualWeights())
	if err != nil {
		t.Fatal(err)
	}
	for k := range caps {
		if math.Abs(got[k]-caps[k]) > 0.005 {
			t.Errorf("C_%d = %.3f, want %.3f", k, got[k], caps[k])
		}
	}
	// Mismatched length rejected.
	if err := FixedCapacityLoads(clus, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Unrealizably small capacity rejected.
	if err := FixedCapacityLoads(clus, []float64{0.01, 0.33, 0.33, 0.33}); err == nil {
		t.Error("unrealizable capacity accepted")
	}
}

func TestFig8to10Shapes(t *testing.T) {
	r, err := Fig8to10()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hetero.Records) != 8 || len(r.Default.Records) != 8 {
		t.Fatalf("want 8 regrids, got %d/%d", len(r.Hetero.Records), len(r.Default.Records))
	}
	for i, rec := range r.Hetero.Records {
		// (b) Hetero assignments track capacities: work ordered like caps
		// and each node within 25% of its share.
		for k := 0; k < 3; k++ {
			if rec.Work[k] > rec.Work[k+1]*1.05 {
				t.Errorf("regrid %d: hetero work not capacity-ordered: %v", i+1, rec.Work)
			}
		}
		if imb := rec.MaxImbalance(); imb > 40 {
			t.Errorf("regrid %d: hetero imbalance %.1f%% above the paper's 40%% bound", i+1, imb)
		}
	}
	for i, rec := range r.Default.Records {
		// Default assigns near-equal work irrespective of capacity.
		mean := 0.0
		for _, w := range rec.Work {
			mean += w
		}
		mean /= 4
		for k, w := range rec.Work {
			if math.Abs(w-mean)/mean > 0.25 {
				t.Errorf("regrid %d: default node %d deviates %.0f%% from equal",
					i+1, k, math.Abs(w-mean)/mean*100)
			}
		}
		// (c) Default imbalance far above hetero's.
		if rec.MaxImbalance() < 2*r.Hetero.Records[i].MaxImbalance() {
			t.Errorf("regrid %d: default imbalance %.1f%% not well above hetero %.1f%%",
				i+1, rec.MaxImbalance(), r.Hetero.Records[i].MaxImbalance())
		}
	}
	// Render sanity.
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 8", "Figure 9", "Figure 10", "16% 19% 31% 34%"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig11Adapts(t *testing.T) {
	r, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	recs := r.Trace.Records
	if len(recs) < 30 {
		t.Fatalf("want >= 30 regrids, got %d", len(recs))
	}
	if r.Trace.Senses != 3 {
		t.Errorf("senses = %d, want 3 (once before + twice during)", r.Trace.Senses)
	}
	// Early: equal capacities -> near-equal assignment.
	first := recs[0]
	if math.Abs(first.Work[0]-first.Work[3]) > 0.05*first.Work[3] {
		t.Errorf("first regrid not equal: %v", first.Work)
	}
	// Late: node 0 loaded -> smallest share.
	last := recs[len(recs)-1]
	if last.Work[0] >= last.Work[3]*0.8 {
		t.Errorf("allocation did not adapt to load on node 0: %v", last.Work)
	}
	// Capacities changed across the samples.
	if sameCaps(recs[0].Caps, last.Caps) {
		t.Error("capacities never changed")
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "capacities") {
		t.Error("render missing capacity annotations")
	}
}

func TestFig7TableIShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig7 sweep in short mode")
	}
	r, err := Fig7TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	prevHetero := math.Inf(1)
	for _, row := range r.Rows {
		// (a) Hetero wins at every P.
		if row.HeteroSec >= row.DefaultSec {
			t.Errorf("P=%d: hetero %.1fs not faster than default %.1fs",
				row.Nodes, row.HeteroSec, row.DefaultSec)
		}
		// Execution time decreases with P (scalability; allow noise-level
		// wiggle where the load script's heavy tier kicks in at P=16).
		if row.HeteroSec > prevHetero*1.05 {
			t.Errorf("P=%d: hetero time %.1fs did not decrease (prev %.1f)",
				row.Nodes, row.HeteroSec, prevHetero)
		}
		prevHetero = row.HeteroSec
	}
	// Improvement grows toward ~18% at scale (paper: 7/6/18/18).
	small := (r.Rows[0].ImprovementPct + r.Rows[1].ImprovementPct) / 2
	large := (r.Rows[2].ImprovementPct + r.Rows[3].ImprovementPct) / 2
	if large <= small {
		t.Errorf("improvement did not grow with P: small %.1f%%, large %.1f%%", small, large)
	}
	if large < 12 || large > 30 {
		t.Errorf("large-P improvement %.1f%% outside the paper's neighbourhood (~18%%)", large)
	}
	if small < 2 || small > 15 {
		t.Errorf("small-P improvement %.1f%% outside the paper's neighbourhood (~7%%)", small)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table I") {
		t.Error("render missing Table I")
	}
}

func TestTable2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table II sweep in short mode")
	}
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// (d) Dynamic sensing beats sense-once substantially at every P.
		gain := (row.StaticSec - row.DynamicSec) / row.StaticSec * 100
		if gain < 10 {
			t.Errorf("P=%d: dynamic gain %.1f%% too small (paper: 35-48%%)", row.Nodes, gain)
		}
	}
	// Both policies scale down with P.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].DynamicSec >= r.Rows[i-1].DynamicSec {
			t.Errorf("dynamic time not decreasing at P=%d", r.Rows[i].Nodes)
		}
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table II") {
		t.Error("render missing title")
	}
}

func TestTable3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table III sweep in short mode")
	}
	r, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// (e) The optimum is at an intermediate frequency (paper: 20), i.e.
	// neither the most frequent nor the rarest sensing wins.
	best := r.Best()
	if best == 10 || best == 40 {
		t.Errorf("optimum at extreme frequency %d; want intermediate (paper: 20)", best)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table III", "Figure 12", "Figure 15"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in short mode")
	}
	split, err := AblationSplitting()
	if err != nil {
		t.Fatal(err)
	}
	// Splitting matters: the no-splitting greedy baseline must be worst.
	greedy := split.Rows[len(split.Rows)-1]
	for _, row := range split.Rows[:len(split.Rows)-1] {
		if row.ExecSec >= greedy.ExecSec {
			t.Errorf("splitting variant %q not better than no-splitting", row.Variant)
		}
	}
	gran, err := AblationGranularity()
	if err != nil {
		t.Fatal(err)
	}
	// Finer granularity gives lower imbalance.
	if gran.Rows[0].MeanImb > gran.Rows[len(gran.Rows)-1].MeanImb {
		t.Error("imbalance should grow with coarser granularity")
	}
	weights, err := AblationWeights()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := weights.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "equal") {
		t.Error("weights render missing variants")
	}
	sfcAbl, err := AblationSFC()
	if err != nil {
		t.Fatal(err)
	}
	if len(sfcAbl.Rows) != 2 {
		t.Error("SFC ablation incomplete")
	}
}

func TestHeterogeneitySweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heterogeneity sweep in short mode")
	}
	r, err := HeterogeneitySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	// Homogeneous cluster: both partitioners within noise of each other.
	if imp := r.Rows[0].ImprovementPct; imp > 5 || imp < -5 {
		t.Errorf("homogeneous improvement %.1f%% should be ~0", imp)
	}
	// The paper's expectation: improvement grows with heterogeneity.
	for i := 2; i < len(r.Rows); i++ {
		if r.Rows[i].ImprovementPct <= r.Rows[0].ImprovementPct {
			t.Errorf("improvement at load %.1f (%.1f%%) not above homogeneous (%.1f%%)",
				r.Rows[i].LoadTarget, r.Rows[i].ImprovementPct, r.Rows[0].ImprovementPct)
		}
	}
	if last := r.Rows[len(r.Rows)-1].ImprovementPct; last < 15 {
		t.Errorf("improvement at 80%% load = %.1f%%, expected substantial", last)
	}
}

func TestMixedHardwareShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-hardware run in short mode")
	}
	r, err := MixedHardware()
	if err != nil {
		t.Fatal(err)
	}
	// Architectural skew alone must give the system-sensitive scheme a
	// clear win, with fast nodes holding larger capacities.
	if r.ImprovementPct < 5 {
		t.Errorf("improvement %.1f%% too small for a 2x speed skew", r.ImprovementPct)
	}
	if r.Caps[0] <= r.Caps[7] {
		t.Errorf("fast node capacity %.3f not above slow node %.3f", r.Caps[0], r.Caps[7])
	}
}

func TestScalabilityShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in short mode")
	}
	r, err := Scalability()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 || r.Rows[0].Nodes != 1 {
		t.Fatalf("rows: %+v", r.Rows)
	}
	// Speedup is monotone up to 16 and efficiency decays.
	for i := 1; i < 5; i++ {
		if r.Rows[i].Speedup <= r.Rows[i-1].Speedup*0.95 {
			t.Errorf("speedup not growing at P=%d: %.2f after %.2f",
				r.Rows[i].Nodes, r.Rows[i].Speedup, r.Rows[i-1].Speedup)
		}
	}
	if r.Rows[1].Efficiency < 0.7 {
		t.Errorf("2-node efficiency %.2f too low", r.Rows[1].Efficiency)
	}
	if r.Rows[5].Efficiency > r.Rows[1].Efficiency {
		t.Error("efficiency should decay with P")
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Speedup") {
		t.Error("render missing speedup column")
	}
}

func TestAblationLocalityShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("locality ablation in short mode")
	}
	r, err := AblationLocality()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Variant] = row
	}
	hetero := byName["ACEHeterogeneous"]
	sfcH := byName["SFCHetero"]
	comp := byName["ACEComposite"]
	// The SFC-ordered capacity-aware scheme keeps hetero's balance...
	if sfcH.MeanImb > hetero.MeanImb+5 {
		t.Errorf("SFCHetero imbalance %.1f%% much worse than hetero %.1f%%",
			sfcH.MeanImb, hetero.MeanImb)
	}
	// ...while moving less data between repartitions.
	if sfcH.MovedMB >= hetero.MovedMB {
		t.Errorf("SFCHetero moved %.0f MB, not less than hetero's %.0f MB",
			sfcH.MovedMB, hetero.MovedMB)
	}
	// The capacity-oblivious composite has much worse balance than either.
	if comp.MeanImb < 2*sfcH.MeanImb {
		t.Errorf("composite imbalance %.1f%% suspiciously low", comp.MeanImb)
	}
}

func TestAblationMemoryWeightsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-weights ablation in short mode")
	}
	r, err := AblationMemoryWeights()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, row := range r.Rows {
		byName[row.Variant] = row.ExecSec
	}
	cb := byName["compute-biased (.6,.2,.2)"]
	mb := byName["memory-biased (.2,.6,.2)"]
	eq := byName["equal (1/3,1/3,1/3)"]
	// §8: on a memory-intensive workload, raising w_m pays. The ordering
	// must be memory-biased < equal < compute-biased.
	if !(mb < eq && eq < cb) {
		t.Errorf("weights ordering wrong: mem %.1f, equal %.1f, cpu %.1f", mb, eq, cb)
	}
	if (cb-mb)/cb < 0.15 {
		t.Errorf("memory-aware gain only %.1f%%", (cb-mb)/cb*100)
	}
}

func TestAblationForecasterPrefersCurrentState(t *testing.T) {
	if testing.Short() {
		t.Skip("forecaster ablation in short mode")
	}
	r, err := AblationForecaster()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, row := range r.Rows {
		byName[row.Variant] = row.ExecSec
	}
	// Under abrupt load switches, current-state (last) must beat the
	// heavy smoothers, and the adaptive ensemble should stay close to the
	// best member.
	if byName["last"] >= byName["mean"] {
		t.Errorf("last (%.1f) not better than mean (%.1f)", byName["last"], byName["mean"])
	}
	if byName["adaptive"] > byName["last"]*1.1 {
		t.Errorf("adaptive (%.1f) far from best member (%.1f)", byName["adaptive"], byName["last"])
	}
}
