package exp

import (
	"io"

	"samrpart/internal/cluster"
	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

// HeterogeneityRow is one skew level of the heterogeneity sweep.
type HeterogeneityRow struct {
	// LoadTarget is the background CPU load on the loaded half of the
	// cluster (0 = homogeneous).
	LoadTarget     float64
	HeteroSec      float64
	DefaultSec     float64
	ImprovementPct float64
}

// HeterogeneityResult tests the paper's central expectation directly: "we
// believe the improvement will be more significant in the case of ...
// greater heterogeneity and load dynamics". Half of an 8-node cluster
// carries background load swept from 0% to 80%; the system-sensitive
// partitioner's advantage over the default must grow with the skew.
type HeterogeneityResult struct {
	Rows []HeterogeneityRow
}

// HeterogeneitySweep runs the sweep.
func HeterogeneitySweep() (*HeterogeneityResult, error) {
	res := &HeterogeneityResult{}
	for _, target := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		target := target
		loads := func(c *cluster.Cluster) {
			if target == 0 {
				return
			}
			for k := 0; k < c.NumNodes(); k += 2 {
				c.Node(k).AddLoad(cluster.Step{CPU: target, MemMB: 200 * target})
			}
		}
		ht, err := run(runConfig{
			name:        "hetero",
			nodes:       8,
			loads:       loads,
			partitioner: partition.NewHetero(),
			iterations:  100,
			regridEvery: 5,
		})
		if err != nil {
			return nil, err
		}
		dt, err := run(runConfig{
			name:        "default",
			nodes:       8,
			loads:       loads,
			partitioner: partition.NewComposite(2),
			iterations:  100,
			regridEvery: 5,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, HeterogeneityRow{
			LoadTarget:     target,
			HeteroSec:      ht.ExecTime,
			DefaultSec:     dt.ExecTime,
			ImprovementPct: (dt.ExecTime - ht.ExecTime) / dt.ExecTime * 100,
		})
	}
	return res, nil
}

// Render writes the sweep table.
func (r *HeterogeneityResult) Render(w io.Writer) error {
	tab := trace.NewTable(
		"Improvement vs degree of heterogeneity (8 nodes, half loaded)",
		"Background load", "Hetero (s)", "Default (s)", "Improvement (%)")
	for _, row := range r.Rows {
		tab.AddF(row.LoadTarget, row.HeteroSec, row.DefaultSec, row.ImprovementPct)
	}
	return tab.Render(w)
}
