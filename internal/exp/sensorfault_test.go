package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestSensorFaultExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("sensor-fault experiment in -short mode")
	}
	res, err := SensorFaults(40, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	clean, static, naive, hygiene := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	// Shape criteria (EXPERIMENTS.md): measured against ground-truth
	// capacities, the hygienic adaptive run beats both the run that trusts
	// every reading and the run that never re-senses; the fault-free run
	// bounds them all.
	if hygiene.TrueImb >= naive.TrueImb {
		t.Errorf("hygiene true imbalance %.1f%% not below naive %.1f%%",
			hygiene.TrueImb, naive.TrueImb)
	}
	if hygiene.TrueImb >= static.TrueImb {
		t.Errorf("hygiene true imbalance %.1f%% not below static %.1f%%",
			hygiene.TrueImb, static.TrueImb)
	}
	if clean.TrueImb >= hygiene.TrueImb {
		t.Errorf("fault-free imbalance %.1f%% should bound hygiene %.1f%%",
			clean.TrueImb, hygiene.TrueImb)
	}
	if clean.Degraded != 0 {
		t.Errorf("fault-free run saw %d degraded probes", clean.Degraded)
	}
	if naive.Degraded == 0 || hygiene.Degraded == 0 {
		t.Errorf("fault injection inert: naive=%d hygiene=%d degraded probes",
			naive.Degraded, hygiene.Degraded)
	}
	// Hygiene absorbs the faults before the capacity metric: no sensing
	// sweep fails outright.
	if hygiene.SenseFail != 0 {
		t.Errorf("hygiene run had %d failed senses", hygiene.SenseFail)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hygiene adaptive", "True imb"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}
