package exp

import (
	"io"

	"samrpart/internal/cluster"
	"samrpart/internal/engine"
	"samrpart/internal/monitor"
	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

// SensorFaultRow is one scenario of the degraded-sensing study.
type SensorFaultRow struct {
	Scenario string
	ExecSec  float64
	// BelievedImb is the mean max-imbalance against the capacities the
	// engine believed; TrueImb measures the same assignments against the
	// ground-truth capacities. A run partitioning on garbage can look
	// balanced on the former while being far off on the latter.
	BelievedImb float64
	TrueImb     float64
	Senses      int
	SenseFail   int
	// Degraded is the number of probe readings that did not flow cleanly
	// into the capacity metric (timeouts, drops, panics, garbage, outliers).
	Degraded int
	// Fallbacks counts control-loop degradations (partitioner fallbacks and
	// kept-last-good events); Skipped counts hysteresis-suppressed
	// repartitions.
	Fallbacks int
	Skipped   int
}

// SensorFaultResult is the rendered study.
type SensorFaultResult struct {
	Rows []SensorFaultRow
}

// DefaultSensorFaultSpec afflicts a quarter of the cluster with the full
// fault mix: occasional timeouts and dropouts, frequent garbage values, and
// a chance of the sensor freezing outright.
func DefaultSensorFaultSpec() monitor.ProbeFaultSpec {
	return monitor.ProbeFaultSpec{
		Seed:        17,
		Frac:        0.25,
		TimeoutProb: 0.15,
		DropProb:    0.15,
		GarbageProb: 0.3,
		FreezeProb:  0.02,
	}
}

// sensorFaultLoads applies time-varying background load so the capacity
// landscape drifts during the run: a static one-shot sensing goes stale and
// loses ground an adaptive run recovers — unless its sensors feed it
// garbage.
func sensorFaultLoads(c *cluster.Cluster) {
	c.Node(2).AddLoad(cluster.Ramp{Start: 0, Rate: 0.04, Target: 0.6, MemTargetMB: 120})
	c.Node(5).AddLoad(cluster.Ramp{Start: 0, Rate: 0.03, Target: 0.45, MemTargetMB: 80})
	c.Node(6).AddLoad(cluster.Step{Start: 0, CPU: 0.3, MemMB: 60})
}

// SensorFaults runs the degraded-sensing study: the same AMR workload on a
// drifting-load cluster, with a quarter of the sensors injecting faults, under
// four policies — fault-free adaptive (reference), static (senses once),
// naive adaptive (trusts every reading), and hygiene adaptive (health
// tracking, sanitization, MAD rejection, staleness decay, masked capacities,
// validated assignments). A nil spec uses DefaultSensorFaultSpec; threshold
// sets the hygiene run's repartition hysteresis (0 = repartition on every
// sense).
func SensorFaults(iters int, spec *monitor.ProbeFaultSpec, threshold float64) (*SensorFaultResult, error) {
	s := DefaultSensorFaultSpec()
	if spec != nil {
		s = *spec
	}
	scenarios := []struct {
		name       string
		senseEvery int
		faults     bool
		hygiene    bool
		threshold  float64
	}{
		{"fault-free adaptive", 5, false, false, 0},
		{"faulty sensors, static", 0, true, false, 0},
		{"faulty sensors, naive adaptive", 5, true, false, 0},
		{"faulty sensors, hygiene adaptive", 5, true, true, threshold},
	}
	res := &SensorFaultResult{}
	for _, sc := range scenarios {
		clus, err := NewCluster(8)
		if err != nil {
			return nil, err
		}
		sensorFaultLoads(clus)
		cfg := engine.Config{
			Name:                 "sensorfault/" + sc.name,
			Hierarchy:            RM3DHierarchy(),
			App:                  engine.NewRM3DOracle(),
			Partitioner:          partition.NewHetero(),
			Iterations:           iters,
			RegridEvery:          5,
			SenseEvery:           sc.senseEvery,
			RepartitionThreshold: sc.threshold,
			Obs:                  obsRT,
		}
		if sc.faults {
			cfg.SensorFaults = &s
		}
		if sc.hygiene {
			cfg.Hygiene = monitor.DefaultHygiene()
		}
		e, err := engine.New(cfg, clus)
		if err != nil {
			return nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, SensorFaultRow{
			Scenario:    sc.name,
			ExecSec:     tr.ExecTime,
			BelievedImb: tr.MeanMaxImbalance(),
			TrueImb:     tr.MeanTrueMaxImbalance(),
			Senses:      tr.Senses,
			SenseFail:   tr.SenseFailures,
			Degraded:    tr.Sensor.Degradations(),
			Fallbacks:   tr.Degraded.Total(),
			Skipped:     tr.RepartitionsSkipped,
		})
	}
	return res, nil
}

// Render writes the study table.
func (r *SensorFaultResult) Render(w io.Writer) error {
	tab := trace.NewTable(
		"Degraded sensing: repartitioning quality with faulty sensors (imbalance vs believed and true capacities)",
		"Scenario", "Exec (s)", "Believed imb (%)", "True imb (%)",
		"Senses", "Sense fail", "Degraded probes", "Fallbacks", "Skipped")
	for _, row := range r.Rows {
		tab.AddF(row.Scenario, row.ExecSec, row.BelievedImb, row.TrueImb,
			row.Senses, row.SenseFail, row.Degraded, row.Fallbacks, row.Skipped)
	}
	return tab.Render(w)
}
