package exp

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"samrpart/internal/checkpoint"
	"samrpart/internal/engine"
	"samrpart/internal/geom"
	"samrpart/internal/monitor"
	"samrpart/internal/partition"
	"samrpart/internal/solver"
	"samrpart/internal/trace"
	"samrpart/internal/transport"
)

// ElasticRow is one membership-policy scenario under the churn schedule.
type ElasticRow struct {
	Scenario string
	// EndMembers is how many ranks finish the run as working members —
	// the structural availability the policy preserved (wall-clock is
	// meaningless for availability on one oversubscribed test machine).
	EndMembers int
	// LostShare is the fraction of total work owned by nobody-that-
	// finished: the capacity fail-stop permanently forfeits.
	LostShare  float64
	Recoveries int
	Admissions int
	Demotions  int
	Promotions int
	BitExact   bool
}

// ElasticResult is the elastic-membership study: the same seeded churn
// schedule (crash + rejoin + slow window) run under increasingly capable
// policies, plus a checkpoint-corruption survival check.
type ElasticResult struct {
	Rows []ElasticRow
	// CorruptionSurvived reports the restart survived a corrupted newest
	// checkpoint epoch by falling back; Fallbacks counts the epochs skipped.
	CorruptionSurvived bool
	Fallbacks          int
	Cells              int
}

// Elastic runs the elastic-membership study over `iters` iterations of the
// 4-rank SPMD advection run. The churn schedule crashes rank 2 mid-run with
// a scheduled restart and dilates rank 1's compute by 6x for a window:
//
//   - "fail-stop" strips the rejoin, so the crash permanently costs a rank;
//   - "rejoin" re-admits the restarted rank at the next clean heartbeat;
//   - "rejoin+shed" additionally sheds the slowed rank's capacity while it
//     lags and promotes it back after the window closes.
//
// Every scenario must stay bit-exact with the fault-free reference —
// membership policy may move work, never change it.
func Elastic(iters int) (*ElasticResult, error) {
	if iters < 16 {
		iters = 16
	}
	res := &ElasticResult{}

	base := func(dir string) engine.SPMDConfig {
		return engine.SPMDConfig{
			Domain:          geom.Box2(0, 0, 31, 31),
			TileSize:        8,
			Kernel:          solver.NewAdvection2D(1.0, 0.5, 0.3, 0.3, 0.1),
			BaseGrid:        solver.UniformGrid(1.0 / 32),
			Partitioner:     partition.NewHetero(),
			CapsAt:          func(int) []float64 { return []float64{0.25, 0.25, 0.25, 0.25} },
			Iterations:      iters,
			RepartEvery:     4,
			RecvDeadline:    2 * time.Second,
			ControlDeadline: 300 * time.Millisecond,
			Obs:             obsRT,
			FT: engine.FTConfig{
				Enabled:         true,
				CheckpointEvery: 4,
				CheckpointDir:   dir,
				SyncCheckpoint:  true,
				CheckpointKeep:  2,
			},
		}
	}
	churn := engine.FaultSchedule{
		{Kind: engine.FaultCrash, Rank: 2, Iter: iters/2 + 2},
		{Kind: engine.FaultRejoin, Rank: 2, Iter: iters/2 + 4},
		{Kind: engine.FaultSlow, Rank: 1, Iter: 4, Until: iters / 2, Factor: 6},
	}

	runGroup := func(cfg engine.SPMDConfig) ([]*engine.SPMDResult, error) {
		eps, err := transport.NewGroup(4)
		if err != nil {
			return nil, err
		}
		for i, ep := range eps {
			eps[i] = transport.NewFaulty(ep, transport.FaultSpec{})
		}
		results := make([]*engine.SPMDResult, len(eps))
		errs := make([]error, len(eps))
		var wg sync.WaitGroup
		for r := range eps {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[r], errs[r] = engine.RunSPMDRank(eps[r], cfg)
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	compose := func(results []*engine.SPMDResult) map[geom.Point]float64 {
		field := map[geom.Point]float64{}
		for _, r := range results {
			if r == nil || r.Crashed {
				continue
			}
			for _, p := range r.Patches {
				p.EachInterior(func(pt geom.Point) { field[pt] = p.At(0, pt) })
			}
		}
		return field
	}
	sameField := func(got, want map[geom.Point]float64) bool {
		if len(got) != len(want) {
			return false
		}
		for pt, w := range want {
			if got[pt] != w {
				return false
			}
		}
		return true
	}

	refDir, err := os.MkdirTemp("", "samrpart-elastic-ref")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(refDir)
	refCfg := base(refDir)
	ref, err := runGroup(refCfg)
	if err != nil {
		return nil, err
	}
	want := compose(ref)
	res.Cells = len(want)

	scenarios := []struct {
		name   string
		faults engine.FaultSchedule
		shed   bool
	}{
		// Fail-stop keeps only the slow window from the churn script: its
		// crash has no rejoin, so the rank is gone for good.
		{"fail-stop", churn.WithoutRejoins(), false},
		{"rejoin", churn, false},
		{"rejoin+shed", churn, true},
	}
	var rejoinDir string
	for _, sc := range scenarios {
		dir, err := os.MkdirTemp("", "samrpart-elastic-"+sc.name)
		if err != nil {
			return nil, err
		}
		if sc.name == "rejoin" {
			rejoinDir = dir // reused below for the corruption restart
		} else {
			defer os.RemoveAll(dir)
		}
		cfg := base(dir)
		cfg.Faults = sc.faults
		if sc.shed {
			cfg.Straggler = monitor.DefaultStragglerPolicy()
		}
		results, err := runGroup(cfg)
		if err != nil {
			return nil, err
		}
		row := ElasticRow{Scenario: sc.name, BitExact: sameField(compose(results), want)}
		for _, r := range results {
			if r.Crashed {
				continue
			}
			row.EndMembers++
			if r.Recoveries > row.Recoveries {
				row.Recoveries = r.Recoveries
			}
			if r.Admissions > row.Admissions {
				row.Admissions = r.Admissions
			}
			if r.StragglerDemotions > row.Demotions {
				row.Demotions = r.StragglerDemotions
			}
			if r.StragglerPromotions > row.Promotions {
				row.Promotions = r.StragglerPromotions
			}
		}
		// The share a crashed rank held was redistributed to survivors, so
		// the structural loss is the member deficit, not dangling work.
		row.LostShare = 1 - float64(row.EndMembers)/4
		res.Rows = append(res.Rows, row)
	}

	// Corruption survival: restart the rejoin scenario from its newest
	// checkpoint epoch after flipping a bit in every shard of that epoch.
	// The restart must detect the damage (CRC), fall back to the previous
	// intact epoch, and still reproduce the reference solution.
	defer os.RemoveAll(rejoinDir)
	newest := checkpoint.LatestShardIter(rejoinDir)
	if newest <= 0 {
		return nil, fmt.Errorf("exp: elastic rejoin run left no checkpoint shards")
	}
	for rank := 0; rank < 4; rank++ {
		p := checkpoint.ShardPath(rejoinDir, newest, rank)
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(p, data, 0o644); err != nil {
			return nil, err
		}
	}
	if _, err := checkpoint.LoadShards(rejoinDir, newest); !errors.Is(err, checkpoint.ErrCorrupt) {
		return nil, fmt.Errorf("exp: corrupted shards loaded without ErrCorrupt (err=%v)", err)
	}
	resCfg := base(rejoinDir)
	resCfg.FT.ResumeFrom = newest
	resCfg.FT.CheckpointKeep = 0 // keep the corrupt epoch in place for the scan
	restarted, err := runGroup(resCfg)
	if err != nil {
		return nil, err
	}
	for _, r := range restarted {
		if r.CkptFallbacks > res.Fallbacks {
			res.Fallbacks = r.CkptFallbacks
		}
	}
	res.CorruptionSurvived = res.Fallbacks > 0 && sameField(compose(restarted), want)
	return res, nil
}

// Render writes the elastic-membership table and the corruption outcome.
func (r *ElasticResult) Render(w io.Writer) error {
	tab := trace.NewTable(
		"Elastic membership under seeded churn: fail-stop vs rejoin vs rejoin+shed",
		"Scenario", "End members", "Lost share", "Recoveries", "Admissions",
		"Demotions", "Promotions", "Bit-exact")
	for _, row := range r.Rows {
		tab.AddF(row.Scenario, row.EndMembers, row.LostShare, row.Recoveries,
			row.Admissions, row.Demotions, row.Promotions, row.BitExact)
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	status := "SURVIVED (fell back to previous intact epoch)"
	if !r.CorruptionSurvived {
		status = "FAILED"
	}
	_, err := fmt.Fprintf(w,
		"Corrupted newest checkpoint epoch over %d cells: %s, %d epoch(s) skipped\n\n",
		r.Cells, status, r.Fallbacks)
	return err
}
