package exp

import (
	"io"

	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

// Fig7Row is one cluster size of the Figure 7 / Table I experiment.
type Fig7Row struct {
	Nodes          int
	HeteroSec      float64
	DefaultSec     float64
	ImprovementPct float64
	// PaperImprovementPct is the paper's reported value for the row.
	PaperImprovementPct float64
}

// Fig7Result reproduces Figure 7 (total execution time, system-sensitive vs
// default partitioner) and Table I (percentage improvement) for
// P = 4, 8, 16, 32.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7Iterations is the run length used for the execution-time comparison.
const Fig7Iterations = 200

// paperTable1 is Table I of the paper.
var paperTable1 = map[int]float64{4: 7, 8: 6, 16: 18, 32: 18}

// Fig7TableI runs the headline experiment: the RM3D workload on loaded
// clusters of 4..32 nodes, system state sensed once before the start (as in
// the paper's Figure 7 runs), comparing ACEHeterogeneous against the GrACE
// default.
func Fig7TableI() (*Fig7Result, error) {
	res := &Fig7Result{}
	for _, nodes := range []int{4, 8, 16, 32} {
		ht, err := run(runConfig{
			name:        "hetero",
			nodes:       nodes,
			loads:       PaperLoadScript,
			partitioner: partition.NewHetero(),
			iterations:  Fig7Iterations,
			regridEvery: 5,
		})
		if err != nil {
			return nil, err
		}
		dt, err := run(runConfig{
			name:        "default",
			nodes:       nodes,
			loads:       PaperLoadScript,
			partitioner: partition.NewComposite(2),
			iterations:  Fig7Iterations,
			regridEvery: 5,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig7Row{
			Nodes:               nodes,
			HeteroSec:           ht.ExecTime,
			DefaultSec:          dt.ExecTime,
			ImprovementPct:      (dt.ExecTime - ht.ExecTime) / dt.ExecTime * 100,
			PaperImprovementPct: paperTable1[nodes],
		})
	}
	return res, nil
}

// Render writes the Figure 7 series and Table I comparison.
func (r *Fig7Result) Render(w io.Writer) error {
	fig := trace.NewSeries(
		"Figure 7: application execution time (s), RM3D kernel",
		"P", "system-sensitive", "default")
	for _, row := range r.Rows {
		fig.Add(float64(row.Nodes), row.HeteroSec, row.DefaultSec)
	}
	if err := fig.Render(w); err != nil {
		return err
	}
	tab := trace.NewTable(
		"\nTable I: improvement of the system-sensitive partitioner",
		"Processors", "Improvement (measured)", "Improvement (paper)")
	for _, row := range r.Rows {
		tab.AddF(row.Nodes, row.ImprovementPct, row.PaperImprovementPct)
	}
	return tab.Render(w)
}
