package exp

import (
	"fmt"
	"io"

	"samrpart/internal/capacity"
	"samrpart/internal/cluster"
	"samrpart/internal/engine"
	"samrpart/internal/partition"
	"samrpart/internal/sfc"
	"samrpart/internal/trace"
)

// AblationRow is one variant of an ablation sweep.
type AblationRow struct {
	Variant string
	ExecSec float64
	MeanImb float64
	MovedMB float64
	CommSec float64
	hasComm bool
}

// AblationResult is a labelled set of variants.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// Render writes the ablation table.
func (r *AblationResult) Render(w io.Writer) error {
	if len(r.Rows) > 0 && r.Rows[0].hasComm {
		tab := trace.NewTable(r.Title,
			"Variant", "Exec time (s)", "Mean max imbalance (%)", "Comm (s)", "Redistributed (MB)")
		for _, row := range r.Rows {
			tab.AddF(row.Variant, row.ExecSec, row.MeanImb, row.CommSec, row.MovedMB)
		}
		return tab.Render(w)
	}
	tab := trace.NewTable(r.Title, "Variant", "Exec time (s)", "Mean max imbalance (%)")
	for _, row := range r.Rows {
		tab.AddF(row.Variant, row.ExecSec, row.MeanImb)
	}
	return tab.Render(w)
}

// runVariant executes the standard loaded 8-node workload with a custom
// engine configuration hook.
func runVariant(name string, mutate func(cfg *engine.Config)) (AblationRow, error) {
	clus, err := NewCluster(8)
	if err != nil {
		return AblationRow{}, err
	}
	PaperLoadScript(clus)
	cfg := engine.Config{
		Name:        name,
		Hierarchy:   RM3DHierarchy(),
		App:         engine.NewRM3DOracle(),
		Partitioner: partition.NewHetero(),
		Iterations:  100,
		RegridEvery: 5,
		SenseEvery:  20,
		Obs:         obsRT,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := engine.New(cfg, clus)
	if err != nil {
		return AblationRow{}, err
	}
	tr, err := e.Run()
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{Variant: name, ExecSec: tr.ExecTime, MeanImb: tr.MeanMaxImbalance()}, nil
}

// AblationWeights compares capacity-weight presets (§8: the weights should
// reflect the application's resource demands).
func AblationWeights() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: capacity weights (w_p, w_m, w_b)"}
	variants := []struct {
		name string
		w    capacity.Weights
	}{
		{"equal (1/3,1/3,1/3)", capacity.EqualWeights()},
		{"compute-biased (.6,.2,.2)", capacity.ComputeBiased()},
		{"memory-biased (.2,.6,.2)", capacity.MemoryBiased()},
		{"comm-biased (.2,.2,.6)", capacity.CommBiased()},
	}
	for _, v := range variants {
		w := v.w
		row, err := runVariant(v.name, func(cfg *engine.Config) { cfg.Weights = w })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationSplitting compares the §5.3 splitting constraints: the paper's
// longest-axis rule, the §8 any-axis extension, a large minimum box size,
// and no splitting at all (greedy assignment).
func AblationSplitting() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: box-splitting constraints"}
	variants := []struct {
		name string
		p    partition.Partitioner
	}{
		{"longest-axis, min 4 (paper)", partition.NewHetero()},
		{"any-axis, min 4 (§8 proposal)", func() partition.Partitioner {
			p := partition.NewHetero()
			p.Constraints.SplitAllAxes = true
			return p
		}()},
		{"longest-axis, min 16", func() partition.Partitioner {
			p := partition.NewHetero()
			p.Constraints.MinBoxSize = 16
			return p
		}()},
		{"no splitting (greedy LPT)", partition.Greedy{}},
	}
	for _, v := range variants {
		p := v.p
		row, err := runVariant(v.name, func(cfg *engine.Config) { cfg.Partitioner = p })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationSFC compares the space-filling curve behind the default composite
// partitioner (Hilbert vs Morton ordering), measuring the locality effect
// on communication time.
func AblationSFC() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: SFC choice for the composite baseline"}
	for _, curve := range []sfc.Curve{sfc.Hilbert{}, sfc.Morton{}} {
		p := partition.NewComposite(2)
		p.Curve = curve
		row, err := runVariant("composite/"+curve.Name(), func(cfg *engine.Config) {
			cfg.Partitioner = p
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationForecaster compares monitor forecasters under the Table III load
// dynamics: predicting the *current* state (last value) against smoothing
// predictors, at a fixed sensing frequency.
func AblationForecaster() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: monitor forecaster (Table III dynamics)"}
	for _, fc := range []string{"last", "mean", "median", "ewma", "adaptive"} {
		fc := fc
		var sum float64
		for _, phase := range table3Phases[:3] {
			clus, err := NewCluster(4)
			if err != nil {
				return nil, err
			}
			table3Loads(phase)(clus)
			cfg := engine.Config{
				Name:        fc,
				Hierarchy:   RM3DHierarchy(),
				App:         engine.NewRM3DOracle(),
				Partitioner: partition.NewHetero(),
				Iterations:  Table3Iterations,
				RegridEvery: 5,
				SenseEvery:  20,
				Forecaster:  fc,
				Obs:         obsRT,
			}
			e, err := engine.New(cfg, clus)
			if err != nil {
				return nil, err
			}
			tr, err := e.Run()
			if err != nil {
				return nil, err
			}
			sum += tr.ExecTime
		}
		res.Rows = append(res.Rows, AblationRow{Variant: fc, ExecSec: sum / 3})
	}
	return res, nil
}

// AblationGranularity sweeps the clustering minimum box side, the knob
// controlling the tension between partitioning precision (small boxes) and
// bounded overheads (big boxes) — the granularity discussion of §5.3 / §7.
func AblationGranularity() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: clustering granularity (min box side)"}
	for _, minSide := range []int{4, 8, 16} {
		minSide := minSide
		hier := RM3DHierarchy()
		hier.Cluster.MinSide = minSide
		if hier.Cluster.MaxSide != 0 && hier.Cluster.MaxSide < 2*minSide {
			hier.Cluster.MaxSide = 2 * minSide
		}
		row, err := runVariant(fmt.Sprintf("min side %d", minSide), func(cfg *engine.Config) {
			cfg.Hierarchy = hier
			p := partition.NewHetero()
			p.Constraints.MinBoxSize = minSide
			cfg.Partitioner = p
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationMemoryWeights demonstrates §8's weight-selection guidance on a
// memory-constrained cluster: half the nodes have most of their memory
// consumed by a resident background job, so work assigned beyond their free
// memory pages (cluster.ComputeTimeMem). CPU-biased weights overload those
// nodes into thrashing; memory-biased weights route work away from them.
func AblationMemoryWeights() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: capacity weights on a memory-constrained cluster"}
	variants := []struct {
		name string
		w    capacity.Weights
	}{
		{"compute-biased (.6,.2,.2)", capacity.ComputeBiased()},
		{"equal (1/3,1/3,1/3)", capacity.EqualWeights()},
		{"memory-biased (.2,.6,.2)", capacity.MemoryBiased()},
	}
	for _, v := range variants {
		v := v
		clus, err := NewCluster(4)
		if err != nil {
			return nil, err
		}
		// Memory hogs leave ~26 MB free on two nodes but burn no CPU; the
		// RM3D working set (~10-45 MB/node depending on shares) pages
		// there when the partitioner over-assigns.
		clus.Node(0).AddLoad(cluster.Step{CPU: 0.05, MemMB: 230})
		clus.Node(1).AddLoad(cluster.Step{CPU: 0.05, MemMB: 230})
		app := engine.NewRM3DOracle()
		app.Bytes = 320 // multi-field state + scratch buffers: heavy footprint
		cfg := engine.Config{
			Name:        v.name,
			Hierarchy:   RM3DHierarchy(),
			App:         app,
			Partitioner: partition.NewHetero(),
			Weights:     v.w,
			Iterations:  60,
			RegridEvery: 5,
			Obs:         obsRT,
		}
		e, err := engine.New(cfg, clus)
		if err != nil {
			return nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant: v.name,
			ExecSec: tr.ExecTime,
			MeanImb: tr.MeanMaxImbalance(),
		})
	}
	return res, nil
}

// AblationLocality compares the partitioner family on the locality axis:
// ACEHeterogeneous (size-sorted, best balance, no box affinity between
// repartitions), SFCHetero (curve-ordered with capacity quotas: locality
// AND system sensitivity), LevelWise (per-level balance, poor inter-level
// locality) and the capacity-oblivious composite. Sensing every 20
// iterations forces repeated repartitions so redistribution volume shows.
func AblationLocality() (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: partitioner locality vs balance"}
	variants := []partition.Partitioner{
		partition.NewHetero(),
		partition.NewSFCHetero(2),
		partition.NewLevelWise(2),
		partition.NewComposite(2),
	}
	for _, p := range variants {
		p := p
		clus, err := NewCluster(8)
		if err != nil {
			return nil, err
		}
		PaperLoadScript(clus)
		// Mild extra dynamics so capacities (and hence assignments)
		// actually change between senses.
		clus.Node(1).AddLoad(cluster.Sinusoid{Mean: 0.2, Amplitude: 0.2, Period: 60, MemMB: 50})
		cfg := engine.Config{
			Name:        p.Name(),
			Hierarchy:   RM3DHierarchy(),
			App:         engine.NewRM3DOracle(),
			Partitioner: p,
			Iterations:  100,
			RegridEvery: 5,
			SenseEvery:  20,
			Obs:         obsRT,
		}
		e, err := engine.New(cfg, clus)
		if err != nil {
			return nil, err
		}
		tr, err := e.Run()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant: p.Name(),
			ExecSec: tr.ExecTime,
			MeanImb: tr.MeanMaxImbalance(),
			CommSec: tr.CommTime,
			MovedMB: tr.MovedBytes / 1e6,
			hasComm: true,
		})
	}
	return res, nil
}

// compile-time interface check for the phase-shifting load wrapper.
var _ cluster.LoadGenerator = phaseShift{}
