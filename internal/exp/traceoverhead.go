package exp

import (
	"fmt"
	"io"
	"sync"
	"time"

	"samrpart/internal/engine"
	"samrpart/internal/geom"
	otrace "samrpart/internal/obs/trace"
	"samrpart/internal/partition"
	"samrpart/internal/solver"
	"samrpart/internal/trace"
	"samrpart/internal/transport"
)

// TraceOverheadRow is one application's traced-vs-untraced comparison.
type TraceOverheadRow struct {
	App string
	// UntracedMS/TracedMS are wall-clock for the full run (ms). On an
	// oversubscribed test machine the delta is noisy; the honest overhead
	// signal is the byte columns plus the benchmark gate in CI.
	UntracedMS float64
	TracedMS   float64
	// WireBytes/TracedWireBytes are total transport payload bytes across all
	// ranks; the difference is exactly the piggybacked trace contexts.
	WireBytes       int64
	TracedWireBytes int64
	// LogBytes and Records measure the JSONL trace log the run produced.
	LogBytes int64
	Records  int
	// BitExact reports the traced solution matched the untraced one
	// cell-bitwise — tracing observes, never perturbs.
	BitExact bool
}

// WirePct is the relative bytes-on-wire overhead (percent).
func (r TraceOverheadRow) WirePct() float64 {
	if r.WireBytes == 0 {
		return 0
	}
	return 100 * float64(r.TracedWireBytes-r.WireBytes) / float64(r.WireBytes)
}

// TraceOverheadResult is the tracing-overhead mini-study across the solver
// suite.
type TraceOverheadResult struct {
	Ranks, Iters int
	Rows         []TraceOverheadRow
}

// countingWriter tallies bytes and JSONL records written to the trace log.
type countingWriter struct{ n, lines int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	for _, b := range p {
		if b == '\n' {
			c.lines++
		}
	}
	return len(p), nil
}

// TraceOverhead measures what distributed tracing costs: the same 4-rank
// SPMD run per application, tracing off then on, comparing wall-clock,
// bytes on the wire (the piggybacked contexts), trace-log volume, and
// bit-exactness of the solution.
func TraceOverhead(iters int) (*TraceOverheadResult, error) {
	if iters < 8 {
		iters = 8
	}
	const ranks = 4
	res := &TraceOverheadResult{Ranks: ranks, Iters: iters}

	apps := []struct {
		name   string
		kernel solver.Kernel
		domain geom.Box
		grid   solver.Grid
		tile   int
	}{
		{"advect2d", solver.NewAdvection2D(1.0, 0.5, 0.3, 0.3, 0.1), geom.Box2(0, 0, 31, 31), solver.UniformGrid(1.0 / 32), 8},
		{"muscl2d", solver.NewMUSCLAdvection2D(1.0, 0.5, 0.3, 0.3, 0.1), geom.Box2(0, 0, 31, 31), solver.UniformGrid(1.0 / 32), 8},
		{"buckley", solver.NewBuckleyLeverett(1.0, 0.3), geom.Box2(0, 0, 31, 31), solver.UniformGrid(1.0 / 32), 8},
		{"euler3d", solver.NewRichtmyerMeshkov([geom.MaxDim]float64{1, 1, 1}), geom.Box3(0, 0, 0, 15, 15, 15), solver.UniformGrid(1.0 / 16), 4},
	}

	for _, app := range apps {
		cfg := engine.SPMDConfig{
			Domain:      app.domain,
			TileSize:    app.tile,
			Kernel:      app.kernel,
			BaseGrid:    app.grid,
			Partitioner: partition.NewHetero(),
			CapsAt: func(iter int) []float64 {
				caps := []float64{0.25, 0.25, 0.25, 0.25}
				if iter >= iters/2 {
					// Shift a third of rank 0's share so every run exercises
					// a traced redistribution, not just halo exchange.
					caps = []float64{0.25 - 0.25/3, 0.25, 0.25, 0.25 + 0.25/3}
				}
				return caps
			},
			Iterations:  iters,
			RepartEvery: 4,
			Obs:         obsRT,
		}

		runOnce := func(tl *otrace.Log) ([]*engine.SPMDResult, time.Duration, error) {
			eps, err := transport.NewGroup(ranks)
			if err != nil {
				return nil, 0, err
			}
			cfg := cfg
			cfg.Trace = tl
			results := make([]*engine.SPMDResult, ranks)
			errs := make([]error, ranks)
			start := time.Now()
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					results[r], errs[r] = engine.RunSPMDRank(eps[r], cfg)
				}()
			}
			wg.Wait()
			wall := time.Since(start)
			for _, err := range errs {
				if err != nil {
					return nil, 0, err
				}
			}
			return results, wall, nil
		}

		plain, plainWall, err := runOnce(nil)
		if err != nil {
			return nil, fmt.Errorf("exp: trace overhead %s untraced: %w", app.name, err)
		}
		cw := &countingWriter{}
		tl := otrace.NewLog(cw)
		traced, tracedWall, err := runOnce(tl)
		if err != nil {
			return nil, fmt.Errorf("exp: trace overhead %s traced: %w", app.name, err)
		}
		if err := tl.Flush(); err != nil {
			return nil, err
		}

		row := TraceOverheadRow{
			App:        app.name,
			UntracedMS: float64(plainWall.Microseconds()) / 1e3,
			TracedMS:   float64(tracedWall.Microseconds()) / 1e3,
			LogBytes:   cw.n,
			BitExact:   true,
		}
		fields := [2]map[geom.Point]float64{{}, {}}
		for i, results := range [][]*engine.SPMDResult{plain, traced} {
			for _, r := range results {
				for _, p := range r.Patches {
					p.EachInterior(func(pt geom.Point) { fields[i][pt] = p.At(0, pt) })
				}
				if i == 0 {
					row.WireBytes += r.BytesSent
				} else {
					row.TracedWireBytes += r.BytesSent
				}
			}
		}
		if len(fields[0]) != len(fields[1]) {
			row.BitExact = false
		}
		for pt, w := range fields[0] {
			if fields[1][pt] != w {
				row.BitExact = false
				break
			}
		}
		row.Records = int(cw.lines)
		if row.Records == 0 {
			return nil, fmt.Errorf("exp: trace overhead %s: traced run produced no trace records", app.name)
		}
		if row.TracedWireBytes <= row.WireBytes {
			return nil, fmt.Errorf("exp: trace overhead %s: traced run sent %d bytes <= untraced %d (contexts missing)",
				app.name, row.TracedWireBytes, row.WireBytes)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the tracing-overhead table.
func (r *TraceOverheadResult) Render(w io.Writer) error {
	tab := trace.NewTable(
		fmt.Sprintf("Tracing overhead: %d ranks, %d iterations (wall-clock on a shared machine is indicative only)", r.Ranks, r.Iters),
		"App", "Untraced ms", "Traced ms", "Wire MB", "Traced wire MB", "Wire +%", "Log MB", "Records", "Bit-exact")
	for _, row := range r.Rows {
		tab.Add(row.App,
			fmt.Sprintf("%.1f", row.UntracedMS),
			fmt.Sprintf("%.1f", row.TracedMS),
			fmt.Sprintf("%.3f", float64(row.WireBytes)/1e6),
			fmt.Sprintf("%.3f", float64(row.TracedWireBytes)/1e6),
			fmt.Sprintf("%.2f%%", row.WirePct()),
			fmt.Sprintf("%.3f", float64(row.LogBytes)/1e6),
			fmt.Sprint(row.Records),
			fmt.Sprint(row.BitExact))
	}
	return tab.Render(w)
}
