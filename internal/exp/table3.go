package exp

import (
	"fmt"
	"io"

	"samrpart/internal/cluster"
	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

// Table3Row is one sensing frequency of the Table III sweep.
type Table3Row struct {
	SenseEvery int
	ExecSec    float64
	PaperSec   float64
	Trace      *trace.RunTrace
}

// Table3Result reproduces Table III (execution time against sensing
// frequency on four processors) and Figures 12-15 (the per-regrid dynamic
// assignments at each frequency). The paper finds a sweet spot at 20
// iterations: sensing more often pays overhead without learning anything
// new; sensing less often reacts too late to the load dynamics.
type Table3Result struct {
	Rows []Table3Row
}

var paperTable3 = map[int]float64{10: 316, 20: 277, 30: 286, 40: 293}

// Table3Iterations is the sweep's run length.
const Table3Iterations = 280

// table3Loads alternates a heavy background job between two nodes in
// irregular windows of 40-70 virtual seconds (a few tens of iterations):
// stale capacities mis-assign up to a full window, but sensing much faster
// than the windows buys nothing beyond its cost — the tension that creates
// the paper's optimum at an intermediate frequency. The phase offset shifts
// the whole script so trials sample different alignments between sensing
// and load switches.
func table3Loads(phase float64) func(c *cluster.Cluster) {
	return func(c *cluster.Cluster) {
		// A heavy background job hops between nodes 0 and 1 in irregular
		// windows: a stale assignment parks ~30% of the work on a node
		// with 15% availability until the next sweep notices.
		windows := []float64{40, 60, 50, 70, 45, 55}
		start := -phase
		for w := 0; w < 24; w++ {
			node := w % 2
			dur := windows[w%len(windows)]
			c.Node(node).AddLoad(cluster.Step{
				Start: start,
				Stop:  start + dur,
				CPU:   0.6,
				MemMB: 120,
			})
			start += dur
		}
	}
}

// phaseShift offsets a load generator in time.
type phaseShift struct {
	offset float64
	gen    cluster.LoadGenerator
}

// CPULoad implements cluster.LoadGenerator.
func (p phaseShift) CPULoad(t float64) float64 { return p.gen.CPULoad(t + p.offset) }

// MemoryMB implements cluster.LoadGenerator.
func (p phaseShift) MemoryMB(t float64) float64 { return p.gen.MemoryMB(t + p.offset) }

// table3Phases are the load-script offsets averaged per frequency.
var table3Phases = []float64{0, 9, 18, 27, 36, 45}

// Table3 sweeps the sensing frequency.
func Table3() (*Table3Result, error) {
	res := &Table3Result{}
	for _, every := range []int{10, 20, 30, 40} {
		var sum float64
		var first *trace.RunTrace
		for _, phase := range table3Phases {
			tr, err := run(runConfig{
				name:        fmt.Sprintf("sense-every-%d", every),
				nodes:       4,
				loads:       table3Loads(phase),
				partitioner: partition.NewHetero(),
				iterations:  Table3Iterations,
				regridEvery: 5,
				senseEvery:  every,
			})
			if err != nil {
				return nil, err
			}
			sum += tr.ExecTime
			if first == nil {
				first = tr
			}
		}
		res.Rows = append(res.Rows, Table3Row{
			SenseEvery: every,
			ExecSec:    sum / float64(len(table3Phases)),
			PaperSec:   paperTable3[every],
			Trace:      first,
		})
	}
	return res, nil
}

// Best returns the sensing frequency with the lowest execution time.
func (r *Table3Result) Best() int {
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.ExecSec < best.ExecSec {
			best = row
		}
	}
	return best.SenseEvery
}

// Render writes Table III and the Figure 12-15 assignment traces.
func (r *Table3Result) Render(w io.Writer) error {
	tab := trace.NewTable(
		"Table III: execution time vs sensing frequency (4 processors)",
		"Sense every (iters)", "Execution time (measured s)", "Execution time (paper s)")
	for _, row := range r.Rows {
		tab.AddF(row.SenseEvery, row.ExecSec, row.PaperSec)
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	for i, row := range r.Rows {
		s := trace.NewSeries(
			fmt.Sprintf("\nFigure %d: dynamic allocation, sensing every %d iterations",
				12+i, row.SenseEvery),
			"Regrid", "Processor 0", "Processor 1", "Processor 2", "Processor 3")
		for j, rec := range row.Trace.Records {
			s.Add(float64(j+1), rec.Work[0], rec.Work[1], rec.Work[2], rec.Work[3])
		}
		if err := s.Render(w); err != nil {
			return err
		}
	}
	return nil
}
