package exp

import (
	"io"

	"samrpart/internal/cluster"
	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

// Table2Row is one cluster size of the dynamic-vs-static sensing
// comparison.
type Table2Row struct {
	Nodes      int
	DynamicSec float64
	StaticSec  float64
	// Paper values for reference.
	PaperDynamicSec, PaperStaticSec float64
}

// Table2Result reproduces Table II: execution time with dynamic sensing
// (every 40 iterations) against sensing only once before the start, while
// background load ramps up during the run.
type Table2Result struct {
	Rows []Table2Row
}

var paperTable2 = map[int][2]float64{
	2: {423.7, 805.5},
	4: {292.0, 450.0},
	6: {272.0, 442.0},
	8: {225.0, 430.0},
}

// Table2Iterations is the run length; the ramps reach their plateaus in the
// first half of the run.
const Table2Iterations = 200

// table2Loads ramps heavy load onto half the nodes shortly after the
// static configuration has taken its only measurement, so a sense-once run
// keeps distributing as if the cluster were idle.
func table2Loads(c *cluster.Cluster) {
	for k := 0; k < c.NumNodes(); k += 2 {
		start := 5 + 10*float64(k/2)
		c.Node(k).AddLoad(cluster.Ramp{
			Start:       start,
			Rate:        0.025,
			Target:      0.8,
			MemTargetMB: 170,
		})
	}
}

// Table2 runs P in {2, 4, 6, 8} with both sensing policies.
func Table2() (*Table2Result, error) {
	res := &Table2Result{}
	for _, nodes := range []int{2, 4, 6, 8} {
		dyn, err := run(runConfig{
			name:        "dynamic",
			nodes:       nodes,
			loads:       table2Loads,
			partitioner: partition.NewHetero(),
			iterations:  Table2Iterations,
			regridEvery: 5,
			senseEvery:  40,
		})
		if err != nil {
			return nil, err
		}
		st, err := run(runConfig{
			name:        "static",
			nodes:       nodes,
			loads:       table2Loads,
			partitioner: partition.NewHetero(),
			iterations:  Table2Iterations,
			regridEvery: 5,
			senseEvery:  0,
		})
		if err != nil {
			return nil, err
		}
		paper := paperTable2[nodes]
		res.Rows = append(res.Rows, Table2Row{
			Nodes:           nodes,
			DynamicSec:      dyn.ExecTime,
			StaticSec:       st.ExecTime,
			PaperDynamicSec: paper[0],
			PaperStaticSec:  paper[1],
		})
	}
	return res, nil
}

// Render writes the comparison table.
func (r *Table2Result) Render(w io.Writer) error {
	tab := trace.NewTable(
		"Table II: execution time, dynamic sensing vs sensing once (s)",
		"Processors", "Dynamic (measured)", "Once (measured)",
		"Dynamic (paper)", "Once (paper)")
	for _, row := range r.Rows {
		tab.AddF(row.Nodes, row.DynamicSec, row.StaticSec,
			row.PaperDynamicSec, row.PaperStaticSec)
	}
	return tab.Render(w)
}
