package exp

import (
	"fmt"
	"io"
	"time"

	"samrpart/internal/engine"
	"samrpart/internal/geom"
	"samrpart/internal/obs"
	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

// weakBoxesPerRank fixes the per-rank workload of the weak-scaling sweep:
// the cluster grows, each rank's share does not, so any per-rank cost that
// grows with the rank count is a scalability wall.
const weakBoxesPerRank = 4

// WeakScalingRow is one virtual cluster size of the sweep.
type WeakScalingRow struct {
	Ranks int
	Boxes int // partitioner output boxes (tiles plus any quota splits)
	// Stage1MS is the hierarchical stage-1 wall time (group the nodes, cut
	// the SFC curve into group segments) — the short global decision that
	// remains centralized.
	Stage1MS float64
	// PerRankUS is the mean wall time a sampled rank spends building its own
	// ghost and migration plans (distributed path, steady state).
	PerRankUS float64
	// CentralMS is one centralized build of every rank's plans — the cost
	// each rank paid per repartition before plan construction was
	// distributed.
	CentralMS float64
	// Speedup is CentralMS over PerRankUS (same units).
	Speedup float64
	// FullKB and DeltaKB are the broadcast sizes of the full box→owner table
	// and the owner-delta wire form for this repartition.
	FullKB  float64
	DeltaKB float64
	// OracleOK reports the sampled distributed plans matched the
	// centralized oracle bit-for-bit.
	OracleOK bool
}

// WeakScalingResult is a weak-scaling study of repartition plan
// construction on virtual clusters up to 4096 ranks: boxes per rank held
// fixed, the hierarchical partitioner produces an old and a next assignment
// (capacities permuted within some groups, the steady-state owner-only
// shift), and engine.RepartitionPlanCost measures the distributed per-rank
// plan build against the retained centralized oracle. No transport group is
// spun up — the study measures exactly the decision+plan path whose scaling
// the rank-0 bottleneck used to cap.
type WeakScalingResult struct {
	BoxesPerRank int
	GroupSize    int
	Rows         []WeakScalingRow
}

// weakCaps builds the deterministic heterogeneous capacity vector (values
// cycle through 4 distinct levels) and its mid-run successor, which swaps
// the first two members' capacities in every fourth group — ownership moves
// inside those groups, the tiling stays put.
func weakCaps(ranks, groupSize int) (capsA, capsB []float64) {
	capsA = make([]float64, ranks)
	for i := range capsA {
		capsA[i] = 1 + float64(i%4)/4
	}
	capsB = append([]float64(nil), capsA...)
	for g := 0; g*groupSize+1 < ranks; g += 4 {
		lo := g * groupSize
		capsB[lo], capsB[lo+1] = capsB[lo+1], capsB[lo]
	}
	norm := func(caps []float64) {
		total := 0.0
		for _, c := range caps {
			total += c
		}
		for i := range caps {
			caps[i] /= total
		}
	}
	norm(capsA)
	norm(capsB)
	return capsA, capsB
}

// weakTiles builds the fixed decomposition for a rank count: 8x8 tiles in a
// square grid of weakBoxesPerRank*ranks boxes (rank counts are powers of 4,
// so the grid is exactly square).
func weakTiles(ranks int) geom.BoxList {
	n := weakBoxesPerRank * ranks
	side := 1
	for side*side < n {
		side++
	}
	tiles := make(geom.BoxList, 0, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			tiles = append(tiles, geom.Box2(x*8, y*8, x*8+7, y*8+7))
		}
	}
	return tiles
}

// WeakScaling runs the sweep over the rank ladder 16..maxRanks.
func WeakScaling(maxRanks, groupSize int) (*WeakScalingResult, error) {
	if maxRanks < 16 {
		maxRanks = 16
	}
	if groupSize < 1 {
		groupSize = 64
	}
	res := &WeakScalingResult{BoxesPerRank: weakBoxesPerRank, GroupSize: groupSize}
	for _, ranks := range []int{16, 64, 256, 1024, 4096} {
		if ranks > maxRanks {
			break
		}
		tiles := weakTiles(ranks)
		capsA, capsB := weakCaps(ranks, groupSize)
		h := partition.NewHierarchical(2)
		h.GroupSize = groupSize
		old, err := h.Partition(tiles, capsA, partition.CellWork)
		if err != nil {
			return nil, fmt.Errorf("exp: weak scaling %d ranks: %w", ranks, err)
		}
		t0 := time.Now()
		if _, err := h.PlanGroups(tiles, capsB, partition.CellWork); err != nil {
			return nil, err
		}
		stage1 := time.Since(t0)
		next, err := h.Partition(tiles, capsB, partition.CellWork)
		if err != nil {
			return nil, err
		}
		samples := []int{0, ranks / 2, ranks - 1}
		sp := obsRT.Span(obs.PhasePlan, -1, ranks)
		rep, err := engine.RepartitionPlanCost(old, next, ranks, samples, 1)
		sp.End()
		if err != nil {
			return nil, err
		}
		row := WeakScalingRow{
			Ranks:     ranks,
			Boxes:     len(next.Boxes),
			Stage1MS:  stage1.Seconds() * 1e3,
			PerRankUS: rep.PerRankSec * 1e6,
			CentralMS: rep.CentralSec * 1e3,
			FullKB:    float64(rep.FullWireBytes) / 1e3,
			DeltaKB:   float64(rep.DeltaWireBytes) / 1e3,
			OracleOK:  rep.OracleOK,
		}
		if rep.PerRankSec > 0 {
			row.Speedup = rep.CentralSec / rep.PerRankSec
		}
		obsRT.Event("weak_scaling_plan_speedup", -1, ranks, row.Speedup)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Stage2Row is one rank count of the stage-2 decentralization sweep.
type Stage2Row struct {
	Ranks  int
	Groups int
	Boxes  int
	// Stage1MS is the replicated stage-1 wall time (grouping + curve cut) —
	// paid identically by both modes, reported for context.
	Stage1MS float64
	// ReplicatedUS is the per-rank wall time when stage 2 is replicated:
	// slice every group's segment and assemble the global assignment.
	ReplicatedUS float64
	// GroupLocalUS is the decentralized per-rank cost: slice only the
	// rank's own group.
	GroupLocalUS float64
	// Speedup is ReplicatedUS over GroupLocalUS.
	Speedup float64
	// OracleOK reports that assembling the per-group slices reproduced the
	// one-shot replicated Partition bit-for-bit.
	OracleOK bool
}

// Stage2Result is a weak-scaling study of the hierarchical partitioner's
// stage 2: how much per-rank decision cost disappears when each rank slices
// only its own group's curve segment (the group-parallel control plane)
// instead of replicating every group's slicing. Stage 1 stays replicated in
// both modes and is timed separately.
type Stage2Result struct {
	BoxesPerRank int
	GroupSize    int
	Rows         []Stage2Row
}

// WeakScalingStage2 runs the stage-2 sweep over the rank ladder
// 16..maxRanks with the same tiling and capacity script as WeakScaling.
func WeakScalingStage2(maxRanks, groupSize int) (*Stage2Result, error) {
	if maxRanks < 16 {
		maxRanks = 16
	}
	if groupSize < 1 {
		groupSize = 64
	}
	res := &Stage2Result{BoxesPerRank: weakBoxesPerRank, GroupSize: groupSize}
	for _, ranks := range []int{16, 64, 256, 1024, 4096} {
		if ranks > maxRanks {
			break
		}
		tiles := weakTiles(ranks)
		capsA, _ := weakCaps(ranks, groupSize)
		h := partition.NewHierarchical(2)
		h.GroupSize = groupSize
		t0 := time.Now()
		plan, err := h.PlanGroups(tiles, capsA, partition.CellWork)
		if err != nil {
			return nil, fmt.Errorf("exp: stage2 sweep %d ranks: %w", ranks, err)
		}
		stage1 := time.Since(t0)
		groups := plan.NumGroups()
		// Repeat the timed slicing enough times that the small rungs are
		// measurable; both modes use the same repeat count.
		reps := 1
		if ranks < 4096 {
			reps = 4096 / ranks
		}
		var assembled *partition.Assignment
		t0 = time.Now()
		for r := 0; r < reps; r++ {
			segs := make([]partition.GroupSegment, groups)
			for g := 0; g < groups; g++ {
				bx, ow := plan.PartitionGroup(g)
				segs[g] = partition.GroupSegment{Boxes: bx, Owners: ow}
			}
			if assembled, err = plan.Assemble(segs); err != nil {
				return nil, fmt.Errorf("exp: stage2 sweep %d ranks: %w", ranks, err)
			}
		}
		replicated := time.Since(t0)
		mid := plan.GroupOf(ranks / 2)
		t0 = time.Now()
		for r := 0; r < reps; r++ {
			if bx, _ := plan.PartitionGroup(mid); len(bx) == 0 {
				return nil, fmt.Errorf("exp: stage2 sweep %d ranks: empty group %d", ranks, mid)
			}
		}
		local := time.Since(t0)
		oracle, err := h.Partition(tiles, capsA, partition.CellWork)
		if err != nil {
			return nil, err
		}
		row := Stage2Row{
			Ranks:        ranks,
			Groups:       groups,
			Boxes:        len(assembled.Boxes),
			Stage1MS:     stage1.Seconds() * 1e3,
			ReplicatedUS: replicated.Seconds() * 1e6 / float64(reps),
			GroupLocalUS: local.Seconds() * 1e6 / float64(reps),
			OracleOK:     assignmentsIdentical(assembled, oracle),
		}
		if row.GroupLocalUS > 0 {
			row.Speedup = row.ReplicatedUS / row.GroupLocalUS
		}
		obsRT.Event("weak_scaling_stage2_speedup", -1, ranks, row.Speedup)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// assignmentsIdentical is a bitwise comparison: same boxes, owners, and
// float-exact work/ideal vectors.
func assignmentsIdentical(a, b *partition.Assignment) bool {
	if !a.Boxes.Equal(b.Boxes) || len(a.Owners) != len(b.Owners) {
		return false
	}
	for i := range a.Owners {
		if a.Owners[i] != b.Owners[i] {
			return false
		}
	}
	if len(a.Work) != len(b.Work) || len(a.Ideal) != len(b.Ideal) {
		return false
	}
	for i := range a.Work {
		if a.Work[i] != b.Work[i] || a.Ideal[i] != b.Ideal[i] {
			return false
		}
	}
	return true
}

// Render writes the stage-2 sweep table.
func (r *Stage2Result) Render(w io.Writer) error {
	tab := trace.NewTable(
		fmt.Sprintf("Stage-2 slicing: replicated vs group-local (%d boxes/rank, groups of %d)",
			r.BoxesPerRank, r.GroupSize),
		"Ranks", "Groups", "Boxes", "Stage1 (ms)", "Replicated (µs)",
		"Group-local (µs)", "Speedup (×)", "Oracle")
	for _, row := range r.Rows {
		oracle := "OK"
		if !row.OracleOK {
			oracle = "MISMATCH"
		}
		tab.AddF(row.Ranks, row.Groups, row.Boxes, row.Stage1MS,
			row.ReplicatedUS, row.GroupLocalUS, row.Speedup, oracle)
	}
	return tab.Render(w)
}

// WriteCSV emits the stage-2 sweep for artifact upload and plotting.
func (r *Stage2Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"ranks,groups,boxes,stage1_ms,replicated_us,grouplocal_us,speedup,oracle_ok"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%.4f,%.4f,%.4f,%.2f,%t\n",
			row.Ranks, row.Groups, row.Boxes, row.Stage1MS,
			row.ReplicatedUS, row.GroupLocalUS, row.Speedup, row.OracleOK); err != nil {
			return err
		}
	}
	return nil
}

// Render writes the weak-scaling table.
func (r *WeakScalingResult) Render(w io.Writer) error {
	tab := trace.NewTable(
		fmt.Sprintf("Weak scaling of repartition plan construction (%d boxes/rank, hierarchical groups of %d)",
			r.BoxesPerRank, r.GroupSize),
		"Ranks", "Boxes", "Stage1 (ms)", "Per-rank plan (µs)", "Central (ms)",
		"Speedup (×)", "Full bcast (KB)", "Delta bcast (KB)", "Oracle")
	for _, row := range r.Rows {
		oracle := "OK"
		if !row.OracleOK {
			oracle = "MISMATCH"
		}
		tab.AddF(row.Ranks, row.Boxes, row.Stage1MS, row.PerRankUS, row.CentralMS,
			row.Speedup, row.FullKB, row.DeltaKB, oracle)
	}
	return tab.Render(w)
}

// WriteCSV emits the sweep for artifact upload and plotting.
func (r *WeakScalingResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"ranks,boxes,stage1_ms,per_rank_us,central_ms,speedup,full_kb,delta_kb,oracle_ok"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%.4f,%.4f,%.4f,%.2f,%.3f,%.3f,%t\n",
			row.Ranks, row.Boxes, row.Stage1MS, row.PerRankUS, row.CentralMS,
			row.Speedup, row.FullKB, row.DeltaKB, row.OracleOK); err != nil {
			return err
		}
	}
	return nil
}
