//go:build soak

package exp

import (
	"math"
	"strings"
	"testing"
)

// The full paper-scale shape sweeps: minutes of virtual-cluster time per
// test. They compile only under the soak tag so the default test run stays
// inside tier-1's budget; the nightly race-full job runs them with
// `go test -tags soak`. The fast shape checks stay in exp_test.go.

func TestFig7TableIShapes(t *testing.T) {
	r, err := Fig7TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	prevHetero := math.Inf(1)
	for _, row := range r.Rows {
		// (a) Hetero wins at every P.
		if row.HeteroSec >= row.DefaultSec {
			t.Errorf("P=%d: hetero %.1fs not faster than default %.1fs",
				row.Nodes, row.HeteroSec, row.DefaultSec)
		}
		// Execution time decreases with P (scalability; allow noise-level
		// wiggle where the load script's heavy tier kicks in at P=16).
		if row.HeteroSec > prevHetero*1.05 {
			t.Errorf("P=%d: hetero time %.1fs did not decrease (prev %.1f)",
				row.Nodes, row.HeteroSec, prevHetero)
		}
		prevHetero = row.HeteroSec
	}
	// Improvement grows toward ~18% at scale (paper: 7/6/18/18).
	small := (r.Rows[0].ImprovementPct + r.Rows[1].ImprovementPct) / 2
	large := (r.Rows[2].ImprovementPct + r.Rows[3].ImprovementPct) / 2
	if large <= small {
		t.Errorf("improvement did not grow with P: small %.1f%%, large %.1f%%", small, large)
	}
	if large < 12 || large > 30 {
		t.Errorf("large-P improvement %.1f%% outside the paper's neighbourhood (~18%%)", large)
	}
	if small < 2 || small > 15 {
		t.Errorf("small-P improvement %.1f%% outside the paper's neighbourhood (~7%%)", small)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table I") {
		t.Error("render missing Table I")
	}
}

func TestTable2Shapes(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// (d) Dynamic sensing beats sense-once substantially at every P.
		gain := (row.StaticSec - row.DynamicSec) / row.StaticSec * 100
		if gain < 10 {
			t.Errorf("P=%d: dynamic gain %.1f%% too small (paper: 35-48%%)", row.Nodes, gain)
		}
	}
	// Both policies scale down with P.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].DynamicSec >= r.Rows[i-1].DynamicSec {
			t.Errorf("dynamic time not decreasing at P=%d", r.Rows[i].Nodes)
		}
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table II") {
		t.Error("render missing title")
	}
}

func TestTable3Shapes(t *testing.T) {
	r, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// (e) The optimum is at an intermediate frequency (paper: 20), i.e.
	// neither the most frequent nor the rarest sensing wins.
	best := r.Best()
	if best == 10 || best == 40 {
		t.Errorf("optimum at extreme frequency %d; want intermediate (paper: 20)", best)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table III", "Figure 12", "Figure 15"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	split, err := AblationSplitting()
	if err != nil {
		t.Fatal(err)
	}
	// Splitting matters: the no-splitting greedy baseline must be worst.
	greedy := split.Rows[len(split.Rows)-1]
	for _, row := range split.Rows[:len(split.Rows)-1] {
		if row.ExecSec >= greedy.ExecSec {
			t.Errorf("splitting variant %q not better than no-splitting", row.Variant)
		}
	}
	gran, err := AblationGranularity()
	if err != nil {
		t.Fatal(err)
	}
	// Finer granularity gives lower imbalance.
	if gran.Rows[0].MeanImb > gran.Rows[len(gran.Rows)-1].MeanImb {
		t.Error("imbalance should grow with coarser granularity")
	}
	weights, err := AblationWeights()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := weights.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "equal") {
		t.Error("weights render missing variants")
	}
	sfcAbl, err := AblationSFC()
	if err != nil {
		t.Fatal(err)
	}
	if len(sfcAbl.Rows) != 2 {
		t.Error("SFC ablation incomplete")
	}
}

func TestHeterogeneitySweepShapes(t *testing.T) {
	r, err := HeterogeneitySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	// Homogeneous cluster: both partitioners within noise of each other.
	if imp := r.Rows[0].ImprovementPct; imp > 5 || imp < -5 {
		t.Errorf("homogeneous improvement %.1f%% should be ~0", imp)
	}
	// The paper's expectation: improvement grows with heterogeneity.
	for i := 2; i < len(r.Rows); i++ {
		if r.Rows[i].ImprovementPct <= r.Rows[0].ImprovementPct {
			t.Errorf("improvement at load %.1f (%.1f%%) not above homogeneous (%.1f%%)",
				r.Rows[i].LoadTarget, r.Rows[i].ImprovementPct, r.Rows[0].ImprovementPct)
		}
	}
	if last := r.Rows[len(r.Rows)-1].ImprovementPct; last < 15 {
		t.Errorf("improvement at 80%% load = %.1f%%, expected substantial", last)
	}
}

func TestScalabilityShapes(t *testing.T) {
	r, err := Scalability()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 || r.Rows[0].Nodes != 1 {
		t.Fatalf("rows: %+v", r.Rows)
	}
	// Speedup is monotone up to 16 and efficiency decays.
	for i := 1; i < 5; i++ {
		if r.Rows[i].Speedup <= r.Rows[i-1].Speedup*0.95 {
			t.Errorf("speedup not growing at P=%d: %.2f after %.2f",
				r.Rows[i].Nodes, r.Rows[i].Speedup, r.Rows[i-1].Speedup)
		}
	}
	if r.Rows[1].Efficiency < 0.7 {
		t.Errorf("2-node efficiency %.2f too low", r.Rows[1].Efficiency)
	}
	if r.Rows[5].Efficiency > r.Rows[1].Efficiency {
		t.Error("efficiency should decay with P")
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Speedup") {
		t.Error("render missing speedup column")
	}
}

func TestAblationLocalityShapes(t *testing.T) {
	r, err := AblationLocality()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Variant] = row
	}
	hetero := byName["ACEHeterogeneous"]
	sfcH := byName["SFCHetero"]
	comp := byName["ACEComposite"]
	// The SFC-ordered capacity-aware scheme keeps hetero's balance...
	if sfcH.MeanImb > hetero.MeanImb+5 {
		t.Errorf("SFCHetero imbalance %.1f%% much worse than hetero %.1f%%",
			sfcH.MeanImb, hetero.MeanImb)
	}
	// ...while moving less data between repartitions.
	if sfcH.MovedMB >= hetero.MovedMB {
		t.Errorf("SFCHetero moved %.0f MB, not less than hetero's %.0f MB",
			sfcH.MovedMB, hetero.MovedMB)
	}
	// The capacity-oblivious composite has much worse balance than either.
	if comp.MeanImb < 2*sfcH.MeanImb {
		t.Errorf("composite imbalance %.1f%% suspiciously low", comp.MeanImb)
	}
}

func TestAblationForecasterPrefersCurrentState(t *testing.T) {
	r, err := AblationForecaster()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, row := range r.Rows {
		byName[row.Variant] = row.ExecSec
	}
	// Under abrupt load switches, current-state (last) must beat the
	// heavy smoothers, and the adaptive ensemble should stay close to the
	// best member.
	if byName["last"] >= byName["mean"] {
		t.Errorf("last (%.1f) not better than mean (%.1f)", byName["last"], byName["mean"])
	}
	if byName["adaptive"] > byName["last"]*1.1 {
		t.Errorf("adaptive (%.1f) far from best member (%.1f)", byName["adaptive"], byName["last"])
	}
}
