// SPMD: a genuinely parallel run over the message-passing layer. Four
// ranks (goroutines over the in-process transport; pass -tcp for real
// sockets) each own part of a 2D advection problem, exchange ghost regions
// every step, and redistribute patch data when the capacities shift
// mid-run. The distributed result is verified bit-exactly against a serial
// single-rank run.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"

	"samrpart/internal/engine"
	"samrpart/internal/geom"
	"samrpart/internal/partition"
	"samrpart/internal/solver"
	"samrpart/internal/transport"
)

func config(ranks int) engine.SPMDConfig {
	return engine.SPMDConfig{
		Domain:      geom.Box2(0, 0, 63, 63),
		TileSize:    8,
		Kernel:      solver.NewAdvection2D(1.0, 0.5, 0.25, 0.25, 0.1),
		BaseGrid:    solver.UniformGrid(1.0 / 64),
		Partitioner: partition.NewSFCHetero(2),
		CapsAt: func(iter int) []float64 {
			caps := make([]float64, ranks)
			for i := range caps {
				caps[i] = 1 / float64(ranks)
			}
			if ranks > 1 && iter >= 10 {
				// Rank 0 "slows down" mid-run: shed half its share.
				delta := caps[0] / 2
				caps[0] -= delta
				caps[ranks-1] += delta
			}
			return caps
		},
		Iterations:  20,
		RepartEvery: 5,
	}
}

func run(eps []transport.Endpoint, cfg engine.SPMDConfig) []*engine.SPMDResult {
	results := make([]*engine.SPMDResult, len(eps))
	var wg sync.WaitGroup
	for r := range eps {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := engine.RunSPMDRank(eps[r], cfg)
			if err != nil {
				log.Fatalf("rank %d: %v", r, err)
			}
			results[r] = res
		}()
	}
	wg.Wait()
	return results
}

func main() {
	useTCP := flag.Bool("tcp", false, "use the TCP transport instead of in-process channels")
	flag.Parse()

	const ranks = 4
	var eps []transport.Endpoint
	var err error
	if *useTCP {
		eps, err = transport.NewTCPGroup(ranks, "127.0.0.1")
	} else {
		eps, err = transport.NewGroup(ranks)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()

	results := run(eps, config(ranks))
	var parallelL1 float64
	var bytes int64
	fmt.Printf("parallel run (%d ranks, transport=%s):\n", ranks, transportName(*useTCP))
	for _, r := range results {
		parallelL1 += r.L1Sum
		bytes += r.BytesSent
		fmt.Printf("  rank %d: %2d boxes, %5d cells, sent %6d bytes, %d repartitions\n",
			r.Rank, len(r.OwnedBoxes), r.OwnedBoxes.TotalCells(), r.BytesSent, r.Repartitions)
	}

	serialEps, err := transport.NewGroup(1)
	if err != nil {
		log.Fatal(err)
	}
	serial := run(serialEps, config(1))[0]
	fmt.Printf("\nglobal |u| sum: parallel %.12f, serial %.12f\n", parallelL1, serial.L1Sum)
	if math.Abs(parallelL1-serial.L1Sum) < 1e-12*math.Max(1, serial.L1Sum) {
		fmt.Println("distributed result matches the serial run bit-exactly ✓")
	} else {
		log.Fatal("MISMATCH between parallel and serial results")
	}
}

func transportName(tcp bool) string {
	if tcp {
		return "tcp"
	}
	return "chan"
}
