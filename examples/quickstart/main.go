// Quickstart: partition a small adaptive hierarchy over a heterogeneous
// 4-node cluster with the system-sensitive partitioner and compare it to
// the capacity-oblivious default — the paper's core idea in ~80 lines.
package main

import (
	"fmt"
	"log"

	"samrpart/internal/amr"
	"samrpart/internal/capacity"
	"samrpart/internal/cluster"
	"samrpart/internal/geom"
	"samrpart/internal/monitor"
	"samrpart/internal/partition"
)

func main() {
	// A 4-node cluster; two nodes are busy with background work.
	clus, err := cluster.New(cluster.Uniform(4, cluster.LinuxWorkstation()), cluster.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	clus.Node(0).AddLoad(cluster.Step{CPU: 0.7, MemMB: 150})
	clus.Node(1).AddLoad(cluster.Step{CPU: 0.5, MemMB: 100})

	// Sense the cluster (the NWS role) and compute relative capacities.
	mon := monitor.NewAdaptiveMonitor(monitor.ClusterProber{C: clus})
	caps, err := capacity.Relative(mon.Sense(clus.Now()), capacity.EqualWeights())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("relative capacities:")
	for k, c := range caps {
		fmt.Printf("  C_%d=%.0f%%", k, c*100)
	}
	fmt.Println()

	// A small 2-level adaptive hierarchy: a 64x64 base grid with a
	// refined patch where the "solution" needs resolution.
	h, err := amr.New(amr.Config{
		Domain:        geom.Box2(0, 0, 63, 63),
		RefineRatio:   2,
		MaxLevels:     2,
		NestingBuffer: 1,
		Cluster:       amr.ClusterOptions{Efficiency: 0.7, MinSide: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	flags := amr.NewFlagField(h.LevelDomain(0))
	for x := 20; x <= 43; x++ {
		for y := 24; y <= 39; y++ {
			flags.Set(geom.Pt2(x, y))
		}
	}
	if err := h.Regrid([]*amr.FlagField{flags}); err != nil {
		log.Fatal(err)
	}
	boxes := h.AllBoxes()
	work := partition.SubcycledWork(2)
	fmt.Printf("hierarchy: %d levels, %d boxes, %d work units\n",
		h.NumLevels(), len(boxes), h.TotalWork())

	// Partition with both schemes and compare.
	for _, p := range []partition.Partitioner{partition.NewHetero(), partition.NewComposite(2)} {
		a, err := p.Partition(boxes, caps, work)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (max imbalance %.1f%%):\n", p.Name(), a.MaxImbalance())
		for k := range caps {
			fmt.Printf("  node %d: %6.0f work (ideal %6.0f, %d boxes)\n",
				k, a.Work[k], a.Ideal[k], len(a.NodeBoxes(k)))
		}
	}
}
