// Richtmyer–Meshkov: the paper's evaluation setup. A 3D compressible
// kernel on a 128x32x32 base grid with 3 levels of factor-2 refinement runs
// on a simulated 32-node Linux cluster under background load, once with the
// system-sensitive partitioner and once with the GrACE default. Prints the
// execution-time comparison (the Figure 7 configuration at P=32).
//
// By default the refinement structure is driven by the calibrated RM3D
// oracle (fast); pass -numerics to run the real 3D Euler solver on a
// reduced 64x16x16 grid instead.
package main

import (
	"flag"
	"fmt"
	"log"

	"samrpart/internal/amr"
	"samrpart/internal/cluster"
	"samrpart/internal/engine"
	"samrpart/internal/exp"
	"samrpart/internal/geom"
	"samrpart/internal/partition"
	"samrpart/internal/solver"
)

func main() {
	numerics := flag.Bool("numerics", false, "run the real 3D Euler solver (reduced grid)")
	iters := flag.Int("iters", 100, "coarse iterations")
	flag.Parse()

	run := func(p partition.Partitioner) float64 {
		clus, err := cluster.New(cluster.Uniform(32, cluster.LinuxWorkstation()), cluster.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		exp.PaperLoadScript(clus)

		var app engine.Application
		hier := exp.RM3DHierarchy()
		if *numerics {
			// Real 3D Euler on a reduced grid: same 4:1:1 shock tube.
			hier = amr.Config{
				Domain:        geom.Box3(0, 0, 0, 63, 15, 15),
				RefineRatio:   2,
				MaxLevels:     2,
				NestingBuffer: 1,
				Cluster:       amr.ClusterOptions{Efficiency: 0.7, MinSide: 4},
			}
			k := solver.NewRichtmyerMeshkov([geom.MaxDim]float64{4, 1, 1})
			app = engine.NewSimApp(k, solver.UniformGrid(4.0/64), 0.05)
		} else {
			app = engine.NewRM3DOracle()
		}
		e, err := engine.New(engine.Config{
			Name:        fmt.Sprintf("rm3d/%s", p.Name()),
			Hierarchy:   hier,
			App:         app,
			Partitioner: p,
			Iterations:  *iters,
			RegridEvery: 5,
		}, clus)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := e.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tr.Summary())
		h := e.Hierarchy()
		fmt.Printf("  final hierarchy: %d levels, %d boxes\n", h.NumLevels(), len(h.AllBoxes()))
		return tr.ExecTime
	}

	hetero := run(partition.NewHetero())
	dflt := run(partition.NewComposite(2))
	fmt.Printf("\nsystem-sensitive partitioning improves execution time by %.1f%% at P=32 (paper: ~18%%)\n",
		(dflt-hetero)/dflt*100)
}
