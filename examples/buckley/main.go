// Buckley–Leverett: a 2D two-phase oil-reservoir water flood (the GrACE
// application family behind the paper's Figure 3) with real numerics. The
// saturation front sweeps the domain; the hierarchy refines around it; the
// system-sensitive partitioner keeps the loaded cluster balanced. Prints
// the hierarchy evolution and an ASCII rendering of the final saturation.
package main

import (
	"fmt"
	"log"
	"strings"

	"samrpart/internal/amr"
	"samrpart/internal/cluster"
	"samrpart/internal/engine"
	"samrpart/internal/geom"
	"samrpart/internal/partition"
	"samrpart/internal/solver"
)

func main() {
	clus, err := cluster.New(cluster.Uniform(4, cluster.LinuxWorkstation()), cluster.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	clus.Node(0).AddLoad(cluster.Step{CPU: 0.6, MemMB: 120})

	const n = 64
	kernel := solver.NewBuckleyLeverett(1.0, 0.35)
	app := engine.NewSimApp(kernel, solver.UniformGrid(1.0/n), 0.08)
	e, err := engine.New(engine.Config{
		Name: "buckley-leverett",
		Hierarchy: amr.Config{
			Domain:        geom.Box2(0, 0, n-1, n-1),
			RefineRatio:   2,
			MaxLevels:     2,
			NestingBuffer: 1,
			Cluster:       amr.ClusterOptions{Efficiency: 0.65, MinSide: 4},
		},
		App:         app,
		Partitioner: partition.NewHetero(),
		Iterations:  60,
		RegridEvery: 4,
	}, clus)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr.Summary())
	for _, rec := range tr.Records {
		fmt.Printf("  regrid %2d: %3d boxes, work %v\n", rec.Regrid, rec.Boxes, fmtWork(rec.Work))
	}

	// ASCII rendering of the final saturation on the base level.
	h := e.Hierarchy()
	fmt.Printf("\nfinal hierarchy: %d levels; saturation field (level 0, '#'>0.6 '+'>0.2 '.'<=0.2):\n", h.NumLevels())
	base := h.Level(0)[0]
	var p *amr.Patch
	if pp, ok := app.Patch(base); ok {
		p = pp
	} else {
		log.Fatal("no base patch")
	}
	const shrink = 2 // render every other row/column
	for y := base.Hi[1]; y >= base.Lo[1]; y -= shrink {
		var sb strings.Builder
		for x := base.Lo[0]; x <= base.Hi[0]; x += shrink {
			s := p.At(0, geom.Pt2(x, y))
			switch {
			case s > 0.6:
				sb.WriteByte('#')
			case s > 0.2:
				sb.WriteByte('+')
			default:
				sb.WriteByte('.')
			}
		}
		fmt.Println(sb.String())
	}
}

func fmtWork(w []float64) string {
	parts := make([]string, len(w))
	for i, v := range w {
		parts[i] = fmt.Sprintf("%.0f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
