// Dynamic load sensing: background load ramps up on two nodes during the
// run; the monitor re-senses every 20 iterations and the partitioner
// redistributes. Prints a live view of capacities and assignments, plus the
// cost of ignoring the dynamics (sense-once on the same script) — the
// Figure 11 / Table II story.
package main

import (
	"fmt"
	"log"

	"samrpart/internal/cluster"
	"samrpart/internal/engine"
	"samrpart/internal/exp"
	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

func loads(c *cluster.Cluster) {
	c.Node(0).AddLoad(cluster.Ramp{Start: 15, Rate: 0.02, Target: 0.75, MemTargetMB: 160})
	c.Node(1).AddLoad(cluster.Ramp{Start: 60, Rate: 0.02, Target: 0.55, MemTargetMB: 110})
}

func run(senseEvery int) *trace.RunTrace {
	clus, err := cluster.New(cluster.Uniform(4, cluster.LinuxWorkstation()), cluster.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	loads(clus)
	e, err := engine.New(engine.Config{
		Name:        fmt.Sprintf("sense-every-%d", senseEvery),
		Hierarchy:   exp.RM3DHierarchy(),
		App:         engine.NewRM3DOracle(),
		Partitioner: partition.NewHetero(),
		Iterations:  120,
		RegridEvery: 5,
		SenseEvery:  senseEvery,
	}, clus)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	dynamic := run(20)
	fmt.Println("dynamic sensing (every 20 iterations):")
	var prevCaps []float64
	for _, rec := range dynamic.Records {
		capsNote := ""
		if prevCaps == nil || capsChanged(prevCaps, rec.Caps) {
			capsNote = fmt.Sprintf("   <- capacities now %.0f%% %.0f%% %.0f%% %.0f%%",
				rec.Caps[0]*100, rec.Caps[1]*100, rec.Caps[2]*100, rec.Caps[3]*100)
			prevCaps = rec.Caps
		}
		fmt.Printf("  t=%6.1fs regrid %2d: work %7.0f %7.0f %7.0f %7.0f%s\n",
			rec.VirtualTime, rec.Regrid, rec.Work[0], rec.Work[1], rec.Work[2], rec.Work[3], capsNote)
	}
	fmt.Println("\n" + dynamic.Summary())

	static := run(0)
	fmt.Println(static.Summary())
	fmt.Printf("\ndynamic sensing is %.1f%% faster than sensing once (paper Table II: 35-48%%)\n",
		(static.ExecTime-dynamic.ExecTime)/static.ExecTime*100)
}

func capsChanged(a, b []float64) bool {
	for i := range a {
		d := a[i] - b[i]
		if d > 1e-12 || d < -1e-12 {
			return true
		}
	}
	return false
}
