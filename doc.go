// Package samrpart is a from-scratch Go reproduction of Sinha & Parashar,
// "Adaptive Runtime Partitioning of AMR Applications on Heterogeneous
// Clusters" (IEEE CLUSTER 2001): a system-sensitive partitioning and
// load-balancing framework for structured adaptive mesh refinement (SAMR)
// applications on heterogeneous, dynamic clusters.
//
// The library lives under internal/: geometry (geom), space-filling curves
// (sfc), the hierarchical distributed dynamic array substrate (hdda), the
// Berger–Oliger AMR machinery (amr), numerical kernels (solver), the
// capacity metric (capacity), the NWS-like resource monitor (monitor), the
// virtual heterogeneous cluster (cluster), the message-passing layer
// (transport), the partitioners (partition), the adaptive runtime (engine)
// and the experiment harness (exp). See README.md, DESIGN.md and
// EXPERIMENTS.md; bench_test.go regenerates every table and figure of the
// paper's evaluation.
package samrpart
