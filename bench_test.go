package samrpart_test

// One benchmark per table and figure of the paper's evaluation section,
// plus the design-choice ablations and micro-benchmarks of the core
// components. Run:
//
//	go test -bench=. -benchmem
//
// The figure/table benches execute the corresponding experiment from
// internal/exp and report the headline quantities as custom metrics
// (seconds of *virtual* cluster time, improvement percentages), so a bench
// run doubles as a reproduction run.

import (
	"math/rand"
	"testing"

	"samrpart/internal/amr"
	"samrpart/internal/exp"
	"samrpart/internal/geom"
	"samrpart/internal/hdda"
	"samrpart/internal/partition"
	"samrpart/internal/sfc"
	"samrpart/internal/solver"
)

// BenchmarkFig7ExecutionTime regenerates Figure 7 and Table I: total
// execution time of the RM3D workload under both partitioners for
// P = 4..32. Reported metrics: measured improvement (%) at P=4 and P=32
// (paper: 7% and 18%).
func BenchmarkFig7ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig7TableI()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].ImprovementPct, "improv4_%")
		b.ReportMetric(r.Rows[3].ImprovementPct, "improv32_%")
		b.ReportMetric(r.Rows[3].HeteroSec, "hetero32_s")
		b.ReportMetric(r.Rows[3].DefaultSec, "default32_s")
	}
}

// BenchmarkFig8DefaultAssignment regenerates Figure 8: per-regrid work
// assignment of the default partitioner at fixed capacities 16/19/31/34%.
// Metric: the default scheme's mean max imbalance (paper: large, up to
// ~100%).
func BenchmarkFig8DefaultAssignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig8to10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Default.MeanMaxImbalance(), "default_imb_%")
	}
}

// BenchmarkFig9HeteroAssignment regenerates Figure 9: per-regrid work
// assignment of ACEHeterogeneous at the same fixed capacities. Metric: its
// mean max imbalance (paper: bounded by the splitting constraints, <40%).
func BenchmarkFig9HeteroAssignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig8to10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Hetero.MeanMaxImbalance(), "hetero_imb_%")
	}
}

// BenchmarkFig10Imbalance regenerates Figure 10: the imbalance comparison
// of both schemes. Metric: default-to-hetero mean imbalance ratio (>1).
func BenchmarkFig10Imbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig8to10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Default.MeanMaxImbalance(), "default_imb_%")
		b.ReportMetric(r.Hetero.MeanMaxImbalance(), "hetero_imb_%")
	}
}

// BenchmarkFig11DynamicSensing regenerates Figure 11: dynamic allocation
// with sensing once before the start plus twice during the run. Metrics:
// number of sensing sweeps and the final-to-first work ratio on the loaded
// node (<1: allocation adapted away from it).
func BenchmarkFig11DynamicSensing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		recs := r.Trace.Records
		first, last := recs[0], recs[len(recs)-1]
		b.ReportMetric(float64(r.Trace.Senses), "senses")
		b.ReportMetric(last.Work[0]/first.Work[0], "node0_work_ratio")
	}
}

// BenchmarkTable2DynamicVsStatic regenerates Table II: execution time with
// dynamic sensing (every 40 iterations) vs sensing only once, P = 2..8.
// Metrics: measured gains at P=2 and P=8 (paper: ~47% and ~48%).
func BenchmarkTable2DynamicVsStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Table2()
		if err != nil {
			b.Fatal(err)
		}
		g2 := (r.Rows[0].StaticSec - r.Rows[0].DynamicSec) / r.Rows[0].StaticSec * 100
		g8 := (r.Rows[3].StaticSec - r.Rows[3].DynamicSec) / r.Rows[3].StaticSec * 100
		b.ReportMetric(g2, "gain2_%")
		b.ReportMetric(g8, "gain8_%")
	}
}

// BenchmarkTable3SensingFrequency regenerates Table III: execution time at
// sensing frequencies 10/20/30/40 iterations. Metric: the optimal
// frequency (paper: 20) and the exec time at it.
func BenchmarkTable3SensingFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Best()), "best_freq_iters")
		for _, row := range r.Rows {
			if row.SenseEvery == 20 {
				b.ReportMetric(row.ExecSec, "exec20_s")
			}
		}
	}
}

// BenchmarkFig12to15SensingTraces regenerates Figures 12-15: the dynamic
// allocation traces underlying the Table III sweep. Metric: regrid count of
// the densest trace.
func BenchmarkFig12to15SensingTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Rows[0].Trace.Records)), "regrids_at_freq10")
	}
}

// BenchmarkAblationWeights sweeps the capacity-weight presets.
func BenchmarkAblationWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationWeights()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].ExecSec, "equal_s")
		b.ReportMetric(r.Rows[1].ExecSec, "computebiased_s")
	}
}

// BenchmarkAblationSplitting compares the §5.3 splitting rules against the
// §8 any-axis proposal and a no-splitting baseline.
func BenchmarkAblationSplitting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationSplitting()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].ExecSec, "paper_s")
		b.ReportMetric(r.Rows[len(r.Rows)-1].ExecSec, "nosplit_s")
	}
}

// BenchmarkAblationSFC compares Hilbert vs Morton ordering in the default
// composite partitioner.
func BenchmarkAblationSFC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationSFC()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].ExecSec, "hilbert_s")
		b.ReportMetric(r.Rows[1].ExecSec, "morton_s")
	}
}

// BenchmarkAblationForecaster compares monitor forecasters under the
// Table III dynamics.
func BenchmarkAblationForecaster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationForecaster()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Variant == "last" {
				b.ReportMetric(row.ExecSec, "last_s")
			}
			if row.Variant == "mean" {
				b.ReportMetric(row.ExecSec, "mean_s")
			}
		}
	}
}

// BenchmarkAblationGranularity sweeps the clustering minimum box side.
func BenchmarkAblationGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationGranularity()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].MeanImb, "fine_imb_%")
		b.ReportMetric(r.Rows[len(r.Rows)-1].MeanImb, "coarse_imb_%")
	}
}

// BenchmarkAblationLocality compares the partitioner family on
// redistribution volume and balance.
func BenchmarkAblationLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationLocality()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].MovedMB, "hetero_moved_MB")
		b.ReportMetric(r.Rows[1].MovedMB, "sfchetero_moved_MB")
	}
}

// BenchmarkAblationMemoryWeights compares weight presets on a
// memory-constrained cluster where over-assignment causes paging.
func BenchmarkAblationMemoryWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationMemoryWeights()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].ExecSec, "computebiased_s")
		b.ReportMetric(r.Rows[2].ExecSec, "membiased_s")
	}
}

// BenchmarkHeterogeneitySweep measures how the system-sensitive advantage
// grows with the degree of heterogeneity (the paper's central expectation).
func BenchmarkHeterogeneitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.HeterogeneitySweep()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].ImprovementPct, "improv_idle_%")
		b.ReportMetric(r.Rows[len(r.Rows)-1].ImprovementPct, "improv_80load_%")
	}
}

// BenchmarkMixedHardware measures the system-sensitive win from pure
// hardware heterogeneity (two workstation generations, no load).
func BenchmarkMixedHardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.MixedHardware()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ImprovementPct, "improv_%")
	}
}

// BenchmarkScalability runs the strong-scaling study on an idle cluster.
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Scalability()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[3].Speedup, "speedup8")
		b.ReportMetric(r.Rows[5].Speedup, "speedup32")
	}
}

// --- Component micro-benchmarks -----------------------------------------

// benchBoxList builds a realistic multi-level list of n boxes.
func benchBoxList(n int) geom.BoxList {
	r := rand.New(rand.NewSource(42))
	var out geom.BoxList
	strip := make([]int, 3)
	for i := 0; i < n; i++ {
		lvl := r.Intn(3)
		x := strip[lvl] * 40
		strip[lvl]++
		y, z := r.Intn(24), r.Intn(24)
		out = append(out, geom.Box3(x, y, z, x+7+r.Intn(24), y+7, z+7).WithLevel(lvl))
	}
	return out
}

// BenchmarkPartitionHetero measures ACEHeterogeneous on a 512-box list
// over 32 nodes.
func BenchmarkPartitionHetero(b *testing.B) {
	boxes := benchBoxList(512)
	caps := partition.UniformCaps(32)
	work := partition.SubcycledWork(2)
	p := partition.NewHetero()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(boxes, caps, work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionComposite measures the SFC-based default on the same
// list.
func BenchmarkPartitionComposite(b *testing.B) {
	boxes := benchBoxList(512)
	caps := partition.UniformCaps(32)
	work := partition.SubcycledWork(2)
	p := partition.NewComposite(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(boxes, caps, work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBergerRigoutsos measures clustering of a flagged shock plane on
// the RM3D base grid.
func BenchmarkBergerRigoutsos(b *testing.B) {
	f := amr.NewFlagField(geom.Box3(0, 0, 0, 127, 31, 31))
	for x := 40; x <= 47; x++ {
		for y := 0; y <= 31; y++ {
			for z := 0; z <= 31; z++ {
				f.Set(geom.Pt3(x, y, z))
			}
		}
	}
	opts := amr.DefaultClusterOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := amr.Cluster(f, f.Box, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHilbertIndex measures 3D Hilbert index evaluation.
func BenchmarkHilbertIndex(b *testing.B) {
	h := sfc.Hilbert{}
	for i := 0; i < b.N; i++ {
		_ = h.Index(geom.Pt3(i&1023, (i>>2)&1023, (i>>4)&1023), 3, 10)
	}
}

// BenchmarkMortonIndex measures 3D Morton index evaluation.
func BenchmarkMortonIndex(b *testing.B) {
	m := sfc.Morton{}
	for i := 0; i < b.N; i++ {
		_ = m.Index(geom.Pt3(i&1023, (i>>2)&1023, (i>>4)&1023), 3, 10)
	}
}

// BenchmarkExtendibleHash measures HDDA directory insert+lookup.
func BenchmarkExtendibleHash(b *testing.B) {
	d := hdda.NewDirectory[int]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) * 2654435761
		d.Put(k, i)
		if _, ok := d.Get(k); !ok {
			b.Fatal("lost key")
		}
	}
}

// BenchmarkEulerStep measures the 3D Euler kernel on a 32^3 patch
// (cell updates per op: 32768).
func BenchmarkEulerStep(b *testing.B) {
	k := solver.NewRichtmyerMeshkov([geom.MaxDim]float64{1, 1, 1})
	g := solver.UniformGrid(1.0 / 32)
	cur := amr.NewPatch(geom.Box3(0, 0, 0, 31, 31, 31), k.Ghost(), k.NumFields())
	next := amr.NewPatch(cur.Box, k.Ghost(), k.NumFields())
	k.Init(cur, g)
	solver.ApplyOutflowBC(cur)
	dt := k.MaxDT(cur, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step(next, cur, g, dt)
	}
}

// BenchmarkAdvectionStep measures the 2D advection kernel on a 256^2 patch.
func BenchmarkAdvectionStep(b *testing.B) {
	k := solver.NewAdvection2D(1, 0.5, 0.5, 0.5, 0.1)
	g := solver.UniformGrid(1.0 / 256)
	cur := amr.NewPatch(geom.Box2(0, 0, 255, 255), k.Ghost(), k.NumFields())
	next := amr.NewPatch(cur.Box, k.Ghost(), k.NumFields())
	k.Init(cur, g)
	solver.ApplyOutflowBC(cur)
	dt := k.MaxDT(cur, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step(next, cur, g, dt)
	}
}

// benchAdvance measures one solver stepping a single patch, reporting cell
// updates per second. Sub-benchmarks run the fused pencil path ("fused")
// and the retained per-point reference path ("ref"); the two are
// bit-identical (see internal/solver/oracle_test.go), so the ratio is pure
// kernel speedup.
func benchAdvance(b *testing.B, k solver.Kernel, box geom.Box, h float64) {
	for _, variant := range []struct {
		name   string
		kernel solver.Kernel
	}{
		{"fused", k},
		{"ref", solver.Reference(k)},
	} {
		b.Run(variant.name, func(b *testing.B) {
			g := solver.UniformGrid(h)
			cur := amr.NewPatch(box, k.Ghost(), k.NumFields())
			next := amr.NewPatch(box, k.Ghost(), k.NumFields())
			k.Init(cur, g)
			solver.ApplyOutflowBC(cur)
			dt := k.MaxDT(cur, g)
			kern := variant.kernel
			// Warm the scratch pools so the timed loop is steady state.
			kern.Step(next, cur, g, dt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kern.Step(next, cur, g, dt)
			}
			b.StopTimer()
			cells := float64(box.Cells()) * float64(b.N)
			b.ReportMetric(cells/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkAdvance2D measures the 2D solver kernels on a 256^2 patch
// (65536 cell updates per op), fused pencil path vs per-point reference.
func BenchmarkAdvance2D(b *testing.B) {
	box := geom.Box2(0, 0, 255, 255)
	h := 1.0 / 256
	b.Run("advection", func(b *testing.B) {
		benchAdvance(b, solver.NewAdvection2D(1, 0.5, 0.5, 0.5, 0.1), box, h)
	})
	b.Run("muscl-advection", func(b *testing.B) {
		benchAdvance(b, solver.NewMUSCLAdvection2D(1, 0.5, 0.5, 0.5, 0.1), box, h)
	})
	b.Run("burgers", func(b *testing.B) {
		benchAdvance(b, solver.NewBurgers2D(), box, h)
	})
	b.Run("buckley-leverett", func(b *testing.B) {
		benchAdvance(b, solver.NewBuckleyLeverett(1, 0.5), box, h)
	})
}

// BenchmarkAdvance3D measures the 3D solver kernels on a 32^3 patch
// (32768 cell updates per op), fused pencil path vs per-point reference.
// The euler3d-rm fused/ref ratio is the headline number gated in CI
// (cmd/benchguard requires >= 2x).
func BenchmarkAdvance3D(b *testing.B) {
	box := geom.Box3(0, 0, 0, 31, 31, 31)
	h := 1.0 / 32
	b.Run("euler3d-rm", func(b *testing.B) {
		benchAdvance(b, solver.NewRichtmyerMeshkov([geom.MaxDim]float64{1, 1, 1}), box, h)
	})
	b.Run("advection", func(b *testing.B) {
		benchAdvance(b, solver.NewAdvection3D(0.7, -0.4, 0.3, 0.5, 0.5, 0.5, 0.1), box, h)
	})
	b.Run("muscl-advection", func(b *testing.B) {
		benchAdvance(b, solver.NewMUSCLAdvection3D(0.6, -0.8, 0.5, 0.5, 0.5, 0.5, 0.1), box, h)
	})
}
