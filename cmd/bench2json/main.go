// Command bench2json converts `go test -bench -benchmem` output into a JSON
// array, for machine-readable benchmark artifacts in CI:
//
//	go test ./internal/engine -run ^$ -bench . -benchmem | bench2json > BENCH_ci.json
//
// Non-benchmark lines (PASS, ok, logs) are ignored. Each benchmark line
// becomes one object with the iteration count and the per-op metrics that
// were present on the line. Parsing lives in internal/benchfmt, shared with
// cmd/benchguard.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"samrpart/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	results, err := benchfmt.Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines found")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(data); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
