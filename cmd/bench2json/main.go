// Command bench2json converts `go test -bench -benchmem` output into a JSON
// array, for machine-readable benchmark artifacts in CI:
//
//	go test ./internal/engine -run ^$ -bench . -benchmem | bench2json > BENCH_ci.json
//
// Non-benchmark lines (PASS, ok, logs) are ignored. Each benchmark line
// becomes one object with the iteration count and the per-op metrics that
// were present on the line.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Metrics carries every custom
// per-op metric emitted via b.ReportMetric (e.g. msgs_sent/op,
// migrated_B/op from BenchmarkSPMDExchange), keyed by its unit.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"b_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// parse extracts benchmark results from go test output. A benchmark line
// is "Name N" followed by (value, unit) pairs; the three standard units
// fill the typed fields, anything else lands in Metrics.
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") ||
			len(fields[0]) <= len("Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters}
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
				sawNs = true
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		if !sawNs {
			continue
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines found")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(data); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
