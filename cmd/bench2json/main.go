// Command bench2json converts `go test -bench -benchmem` output into a JSON
// array, for machine-readable benchmark artifacts in CI:
//
//	go test ./internal/engine -run ^$ -bench . -benchmem | bench2json > BENCH_ci.json
//
// Non-benchmark lines (PASS, ok, logs) are ignored. Each benchmark line
// becomes one object with the iteration count and the per-op metrics that
// were present on the line.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// parse extracts benchmark results from go test output.
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var res Result
		var nsUnit, bUnit, allocUnit string
		n, _ := fmt.Sscanf(sc.Text(), "%s %d %f %s %d %s %d %s",
			&res.Name, &res.Iterations, &res.NsPerOp, &nsUnit,
			&res.BytesPerOp, &bUnit, &res.AllocsPerOp, &allocUnit)
		// A benchmark line has at least "Name N ns/op"; -benchmem appends
		// "B/op" and "allocs/op".
		if n < 4 || len(res.Name) < 10 || res.Name[:9] != "Benchmark" || nsUnit != "ns/op" {
			continue
		}
		if n < 6 || bUnit != "B/op" {
			res.BytesPerOp = 0
		}
		if n < 8 || allocUnit != "allocs/op" {
			res.AllocsPerOp = 0
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines found")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(data); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
