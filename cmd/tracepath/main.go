// Command tracepath analyzes a distributed trace log (JSONL, written by the
// SPMD runtime with tracing on) into per-iteration critical paths: for every
// (epoch, iteration) it prints the chain of (rank, phase, blocking peer)
// hops that bounded wall-clock, the top causes with their share of the
// iteration, clock-offset/RTT estimates per rank, and the cross-run
// straggler attribution ranking — cross-checked against the straggler
// detector's own shed verdicts recorded in the log.
//
//	go run ./cmd/amrun -spmd 4 -trace run.trace ... && go run ./cmd/tracepath run.trace
//	go run ./cmd/tracepath -top 3 -chrome run.json run.trace   # Perfetto export
//	go run ./cmd/tracepath -csv causes run.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	otrace "samrpart/internal/obs/trace"
	"samrpart/internal/trace"
)

// peerCell renders a blocking-peer column (wait hops name a peer, own work
// does not).
func peerCell(p int) string {
	if p < 0 {
		return "-"
	}
	return fmt.Sprint(p)
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func ms(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

// causeTable builds the per-iteration critical-path table: one row per
// (epoch, iter) with its wall-clock, coverage, and top causes.
func causeTable(tl *otrace.Timeline, top int) *trace.Table {
	t := trace.NewTable("per-iteration critical path",
		"epoch", "iter", "wall ms", "covered", "top causes (rank:phase[<-peer] share)")
	for _, w := range tl.Iters {
		covered := 1.0
		if w.Wall > 0 {
			covered = float64(w.Covered) / float64(w.Wall)
		}
		causes := ""
		for i, c := range w.Causes {
			if i >= top {
				break
			}
			if i > 0 {
				causes += "  "
			}
			causes += fmt.Sprintf("%d:%s", c.Rank, c.Phase)
			if c.Peer >= 0 {
				causes += fmt.Sprintf("<-%d", c.Peer)
			}
			causes += " " + pct(c.Frac)
		}
		t.Add(fmt.Sprint(w.Epoch), fmt.Sprint(w.Iter), ms(w.Wall), pct(covered), causes)
	}
	return t
}

// offsetTable lists the stitched per-rank clock model.
func offsetTable(tl *otrace.Timeline) *trace.Table {
	t := trace.NewTable("clock alignment (vs reference rank)", "rank", "offset ms", "hb rtt ms")
	for _, r := range tl.Ranks {
		rtt := "-"
		if v, ok := tl.RTTs[r]; ok {
			rtt = ms(v)
		}
		t.Add(fmt.Sprint(r), ms(tl.Offsets[r]), rtt)
	}
	return t
}

// shareTable is the straggler attribution ranking: critical-path time
// charged to each rank (wait hops blame the blocking peer), annotated with
// the straggler detector's own verdicts about that rank from the same log.
func shareTable(tl *otrace.Timeline) *trace.Table {
	verdicts := map[int]string{}
	for _, v := range tl.Verdicts {
		s := fmt.Sprintf("%s@(%d,%d)", v.State, v.Epoch, v.Iter)
		if prev := verdicts[v.Target]; prev != "" {
			s = prev + " " + s
		}
		verdicts[v.Target] = s
	}
	t := trace.NewTable("straggler attribution (critical-path time charged per rank)",
		"rank", "ms", "share", "detector verdicts")
	for _, s := range tl.Shares {
		vd := verdicts[s.Rank]
		if vd == "" {
			vd = "-"
		}
		t.Add(fmt.Sprint(s.Rank), ms(s.NS), pct(s.Frac), vd)
	}
	return t
}

func run(in io.Reader, out io.Writer, top int, chromePath, csv string) error {
	recs, skipped, err := otrace.ReadRecords(in)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no trace records in input (%d malformed lines)", skipped)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "tracepath: skipped %d malformed line(s) (truncated log?)\n", skipped)
	}
	tl := otrace.Stitch(recs, skipped)

	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := otrace.WriteChrome(f, recs, tl); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tracepath: wrote Chrome trace JSON to %s (open in Perfetto)\n", chromePath)
	}

	if csv != "" {
		switch csv {
		case "causes":
			return causeTable(tl, top).CSV(out)
		case "shares":
			return shareTable(tl).CSV(out)
		case "offsets":
			return offsetTable(tl).CSV(out)
		default:
			return fmt.Errorf("unknown -csv table %q (want causes, shares or offsets)", csv)
		}
	}

	fmt.Fprintf(out, "%d records, %d ranks, %d iteration windows\n",
		len(recs), len(tl.Ranks), len(tl.Iters))
	if err := causeTable(tl, top).Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if err := shareTable(tl).Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return offsetTable(tl).Render(out)
}

func main() {
	top := flag.Int("top", 3, "causes shown per iteration row")
	chrome := flag.String("chrome", "", "also write Chrome trace-event JSON (Perfetto-viewable) to this path")
	csv := flag.String("csv", "", "emit one table as CSV instead of text: causes | shares | offsets")
	flag.Parse()
	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "tracepath: at most one trace-log path (or stdin)")
		os.Exit(2)
	}
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracepath:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, os.Stdout, *top, *chrome, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "tracepath:", err)
		os.Exit(1)
	}
}
