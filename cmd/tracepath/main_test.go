package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleTrace is a deterministic two-rank log: rank 1 computes late, rank 0
// blocks on its halo, a heartbeat pair yields clock offsets, and a shed
// verdict names rank 1.
const sampleTrace = `{"k":"s","r":0,"ph":"compute","e":0,"i":7,"t0":0,"t1":100000}
{"k":"s","r":0,"p":1,"ph":"halo-wait","e":0,"i":7,"ts":450000,"t0":100000,"t1":500000}
{"k":"s","r":0,"ph":"advance","e":0,"i":7,"t0":500000,"t1":550000}
{"k":"s","r":1,"ph":"compute","e":0,"i":7,"t0":0,"t1":440000}
{"k":"s","r":1,"ph":"pack","e":0,"i":7,"t0":440000,"t1":450000}
{"k":"m","r":1,"p":0,"kd":"h","e":0,"i":7,"b":2048,"ts":450000,"t":450000}
{"k":"v","r":0,"p":1,"kd":"h","e":0,"i":7,"b":2048,"ts":450000,"t":460000}
{"k":"s","r":1,"ph":"advance","e":0,"i":7,"t0":450000,"t1":460000}
{"k":"o","r":0,"p":1,"off":5000,"rtt":900,"t":100}
{"k":"o","r":1,"p":0,"off":-5000,"rtt":900,"t":100}
{"k":"g","r":0,"tgt":1,"e":0,"i":7,"st":"shed","t":100}
{"k":"g","r":1,"tgt":1,"e":0,"i":7,"st":"shed","t":100}
`

// TestTracepathGolden pins the report shape: the critical-path row names the
// blocking chain, attribution charges rank 1, the clock table carries the
// 5µs offset, and the verdict column cross-references the detector.
func TestTracepathGolden(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sampleTrace), &out, 3, "", ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"12 records, 2 ranks, 1 iteration windows",
		"per-iteration critical path",
		"100.0%",         // full coverage
		"0:halo-wait<-1", // the wait hop names the blocking peer
		"straggler attribution",
		"shed@(0,7)", // detector verdict cross-check
		"clock alignment",
		"0.005", // 5000ns offset in ms
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q in:\n%s", want, got)
		}
	}
	// Rank 1 must head the attribution ranking: its own compute plus the
	// charged halo-wait dominate the 550µs window.
	shareSec := got[strings.Index(got, "straggler attribution"):]
	line1 := strings.Index(shareSec, "\n1 ")
	line0 := strings.Index(shareSec, "\n0 ")
	if line1 == -1 || (line0 != -1 && line0 < line1) {
		t.Errorf("rank 1 does not head the attribution table:\n%s", shareSec)
	}
}

func TestTracepathCSVAndChrome(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sampleTrace), &out, 2, "", "causes"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "epoch,") {
		t.Fatalf("causes CSV = %q", out.String())
	}

	chrome := filepath.Join(t.TempDir(), "out.json")
	if err := run(strings.NewReader(sampleTrace), &out, 2, chrome, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"ph":"X"`) {
		t.Errorf("chrome export has no span events:\n%s", data)
	}

	if err := run(strings.NewReader(sampleTrace), &out, 2, "", "bogus"); err == nil {
		t.Error("bogus -csv table accepted")
	}
}

// TestTracepathTruncatedInput proves the CLI analyzes a log with a cut
// final line instead of dying on it.
func TestTracepathTruncatedInput(t *testing.T) {
	var out strings.Builder
	in := sampleTrace + `{"k":"s","r":0,"ph":"compute","e":0,"i":8,"t0":600000,"t1`
	if err := run(strings.NewReader(in), &out, 3, "", ""); err != nil {
		t.Fatalf("truncated tail should be skipped: %v", err)
	}
	if !strings.Contains(out.String(), "12 records") {
		t.Errorf("surviving records not analyzed:\n%s", out.String())
	}
}

func TestTracepathEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("garbage\n"), &out, 3, "", ""); err == nil {
		t.Error("want an error on a log with no valid records")
	}
}
