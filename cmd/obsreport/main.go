// Command obsreport renders the observability event log (JSONL, written by
// amrun/experiments with -events) as per-phase and per-rank breakdown
// tables: how much wall time each runtime phase consumed, how it spread
// across SPMD ranks, and how many bytes moved in each phase.
//
//	go run ./cmd/amrun -events run.jsonl ... && go run ./cmd/obsreport run.jsonl
//	go run ./cmd/obsreport -csv phase run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"samrpart/internal/obs"
	"samrpart/internal/trace"
)

// phaseStats accumulates one phase's (or one rank's) span population.
type phaseStats struct {
	spans int
	total float64
	max   float64
	bytes int64
}

func (s *phaseStats) add(ev obs.Event) {
	s.spans++
	s.total += ev.DurS
	if ev.DurS > s.max {
		s.max = ev.DurS
	}
	s.bytes += ev.Bytes
}

func (s *phaseStats) mean() float64 {
	if s.spans == 0 {
		return 0
	}
	return s.total / float64(s.spans)
}

// report is the parsed breakdown of one event log.
type report struct {
	runs     map[string]bool
	events   int
	named    int
	wall     float64
	phases   map[string]*phaseStats
	rank     map[int]map[string]*phaseStats // rank -> phase -> stats
	phaseSet []string                       // phases in taxonomy order, then unknown extras
}

// build folds the event stream into the report.
func build(evs []obs.Event) *report {
	r := &report{
		runs:   map[string]bool{},
		phases: map[string]*phaseStats{},
		rank:   map[int]map[string]*phaseStats{},
	}
	for _, ev := range evs {
		r.runs[ev.Run] = true
		if ev.T > r.wall {
			r.wall = ev.T
		}
		if ev.Name != "" {
			r.named++
			continue
		}
		r.events++
		ps := r.phases[ev.Phase]
		if ps == nil {
			ps = &phaseStats{}
			r.phases[ev.Phase] = ps
		}
		ps.add(ev)
		rp := r.rank[ev.Rank]
		if rp == nil {
			rp = map[string]*phaseStats{}
			r.rank[ev.Rank] = rp
		}
		rs := rp[ev.Phase]
		if rs == nil {
			rs = &phaseStats{}
			rp[ev.Phase] = rs
		}
		rs.add(ev)
	}
	// Known taxonomy order first so tables read sense -> ... -> checkpoint,
	// then any unknown phase names alphabetically.
	known := map[string]bool{}
	for _, p := range obs.Phases() {
		name := p.String()
		known[name] = true
		if r.phases[name] != nil {
			r.phaseSet = append(r.phaseSet, name)
		}
	}
	var extra []string
	for name := range r.phases {
		if !known[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	r.phaseSet = append(r.phaseSet, extra...)
	return r
}

// secs renders a duration column with microsecond resolution.
func secs(v float64) string { return fmt.Sprintf("%.6f", v) }

// phaseTable builds the per-phase breakdown.
func (r *report) phaseTable() *trace.Table {
	t := trace.NewTable("per-phase breakdown", "phase", "spans", "total s", "mean s", "max s", "MB")
	for _, name := range r.phaseSet {
		s := r.phases[name]
		t.Add(name, fmt.Sprint(s.spans), secs(s.total), secs(s.mean()), secs(s.max),
			fmt.Sprintf("%.3f", float64(s.bytes)/1e6))
	}
	return t
}

// rankTable builds the per-rank breakdown: one row per rank, one duration
// column per phase that appears in the log. Rank -1 is the engine control
// loop (it has no SPMD rank).
func (r *report) rankTable() *trace.Table {
	header := append([]string{"rank", "spans"}, r.phaseSet...)
	header = append(header, "MB")
	t := trace.NewTable("per-rank breakdown (seconds)", header...)
	ranks := make([]int, 0, len(r.rank))
	for k := range r.rank {
		ranks = append(ranks, k)
	}
	sort.Ints(ranks)
	for _, k := range ranks {
		rp := r.rank[k]
		spans, bytes := 0, int64(0)
		cells := []string{fmt.Sprint(k), ""}
		for _, name := range r.phaseSet {
			s := rp[name]
			if s == nil {
				cells = append(cells, "-")
				continue
			}
			spans += s.spans
			bytes += s.bytes
			cells = append(cells, secs(s.total))
		}
		cells[1] = fmt.Sprint(spans)
		cells = append(cells, fmt.Sprintf("%.3f", float64(bytes)/1e6))
		t.Add(cells...)
	}
	return t
}

func run(in io.Reader, out io.Writer, csv string) error {
	evs, skipped, err := obs.ReadEventsLenient(in)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "obsreport: skipped %d malformed line(s) (truncated log?)\n", skipped)
	}
	r := build(evs)
	if csv != "" {
		switch csv {
		case "phase":
			return r.phaseTable().CSV(out)
		case "rank":
			return r.rankTable().CSV(out)
		default:
			return fmt.Errorf("unknown -csv table %q (want phase or rank)", csv)
		}
	}
	runs := make([]string, 0, len(r.runs))
	for id := range r.runs {
		runs = append(runs, id)
	}
	sort.Strings(runs)
	fmt.Fprintf(out, "runs: %v\n", runs)
	fmt.Fprintf(out, "%d spans, %d named events, last event at t=%.3fs\n",
		r.events, r.named, r.wall)
	if err := r.phaseTable().Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return r.rankTable().Render(out)
}

func main() {
	csv := flag.String("csv", "", "emit one table as CSV instead of text: phase | rank")
	flag.Parse()
	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "obsreport: at most one event-log path (or stdin)")
		os.Exit(2)
	}
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "obsreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, os.Stdout, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}
