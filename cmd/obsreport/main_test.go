package main

import (
	"strings"
	"testing"

	"samrpart/internal/obs"
)

// sampleLog builds a real event log via the obs runtime so the report is
// tested against the writer's actual wire format.
func sampleLog(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	rt := obs.New(obs.Config{Seed: 42, Events: &sb})
	for iter := 0; iter < 3; iter++ {
		for rank := 0; rank < 2; rank++ {
			rt.Span(obs.PhaseCompute, rank, iter).End()
			rt.Span(obs.PhaseHaloWait, rank, iter).EndBytes(1 << 20)
		}
	}
	rt.Span(obs.PhaseSense, -1, 0).End()
	rt.Event("crash-detected", 1, 2, 1)
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestReportBreakdown(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sampleLog(t)), &out, ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"run-",
		"13 spans, 1 named events",
		"per-phase breakdown",
		"per-rank breakdown",
		"sense",
		"compute",
		"halo-wait",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q in:\n%s", want, got)
		}
	}
	// 2 ranks x 3 iters x 1 MiB halo-wait payload each: the halo-wait
	// phase row carries 6.291 MB, each rank row half that.
	if !strings.Contains(got, "6.291") {
		t.Errorf("per-phase MB column missing 6.291:\n%s", got)
	}
	if !strings.Contains(got, "3.146") {
		t.Errorf("per-rank MB column missing 3.146:\n%s", got)
	}
	// The engine control loop reports as rank -1.
	if !strings.Contains(got, "-1") {
		t.Errorf("rank -1 row missing:\n%s", got)
	}
}

func TestReportCSV(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sampleLog(t)), &out, "phase"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 { // header + sense + compute + halo-wait
		t.Fatalf("want 4 CSV lines, got %d:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "phase,") {
		t.Errorf("CSV header = %q", lines[0])
	}

	if err := run(strings.NewReader(sampleLog(t)), &out, "bogus"); err == nil {
		t.Error("bogus -csv table accepted")
	}
}

// TestReportMalformedInput proves the report survives a log whose tail was
// truncated mid-write: the malformed line is skipped, the surviving records
// are still analyzed.
func TestReportMalformedInput(t *testing.T) {
	var out strings.Builder
	in := sampleLog(t) + "{\"run\":\"x\",\"ph\":\"compute\",\"t0\":1.5,\"t1"
	if err := run(strings.NewReader(in), &out, ""); err != nil {
		t.Fatalf("truncated trailing line should be skipped, got %v", err)
	}
	if !strings.Contains(out.String(), "13 spans") {
		t.Errorf("surviving records not analyzed:\n%s", out.String())
	}
}
