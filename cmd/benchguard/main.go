// Command benchguard gates CI on benchmark results, benchstat-style but
// dependency-free. It reads current `go test -bench` text output (file
// argument or stdin) and applies two kinds of checks:
//
//   - A before/after regression gate against a committed JSON baseline
//     (bench2json format, e.g. BENCH_SEED.json): every baseline benchmark
//     whose name matches -match and appears in the current run must not be
//     more than -tolerance slower. Because the baseline was recorded on a
//     different machine than the CI runner, comparisons are normalized by
//     the median current/baseline ratio across all matched benchmarks: a
//     uniformly slower machine shifts every ratio equally and passes, while
//     a single benchmark regressing relative to its peers fails. Pass
//     -normalize=false for same-machine comparisons.
//
//   - Hardware-independent speedup gates: -speedup name:min requires the
//     current run to contain name/ref and name/fused sub-benchmarks with
//     ref_ns/fused_ns >= min. This is how CI enforces the fused pencil
//     kernels staying >= 2x faster than the retained reference path.
//
//   - General ratio gates: -ratio name:num/den:min requires the current run
//     to contain name/num and name/den sub-benchmarks with
//     num_ns/den_ns >= min. This is the speedup gate with the pair of
//     sub-benchmark suffixes spelled out, e.g. central/distributed for the
//     repartition plan builders.
//
// Usage:
//
//	benchguard -baseline BENCH_SEED.json -match 'Advance|SPMD' bench.txt
//	benchguard -speedup 'BenchmarkAdvance3D/euler3d-rm:2.0' advance.txt
//	benchguard -ratio 'BenchmarkRepartitionPlan/boxes=4096/ranks=64:central/distributed:5.0' bench.txt
//
// Exit status is non-zero if any gate fails or any named benchmark is
// missing from the input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"samrpart/internal/benchfmt"
)

type speedupGate struct {
	name string
	min  float64
}

func parseSpeedups(spec string) ([]speedupGate, error) {
	if spec == "" {
		return nil, nil
	}
	var gates []speedupGate
	for _, part := range strings.Split(spec, ",") {
		i := strings.LastIndexByte(part, ':')
		if i < 0 {
			return nil, fmt.Errorf("speedup gate %q: want name:min", part)
		}
		min, err := strconv.ParseFloat(part[i+1:], 64)
		if err != nil || min <= 0 {
			return nil, fmt.Errorf("speedup gate %q: bad minimum", part)
		}
		gates = append(gates, speedupGate{name: part[:i], min: min})
	}
	return gates, nil
}

type ratioGate struct {
	name     string
	num, den string
	min      float64
}

func parseRatios(spec string) ([]ratioGate, error) {
	if spec == "" {
		return nil, nil
	}
	var gates []ratioGate
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("ratio gate %q: want name:num/den:min", part)
		}
		subs := strings.Split(fields[1], "/")
		if len(subs) != 2 || subs[0] == "" || subs[1] == "" {
			return nil, fmt.Errorf("ratio gate %q: want num/den sub-benchmark pair", part)
		}
		min, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || min <= 0 {
			return nil, fmt.Errorf("ratio gate %q: bad minimum", part)
		}
		gates = append(gates, ratioGate{name: fields[0], num: subs[0], den: subs[1], min: min})
	}
	return gates, nil
}

// index maps GOMAXPROCS-stripped benchmark names to results.
func index(results []benchfmt.Result) map[string]benchfmt.Result {
	m := make(map[string]benchfmt.Result, len(results))
	for _, r := range results {
		m[benchfmt.BaseName(r.Name)] = r
	}
	return m
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return 0.5 * (s[n/2-1] + s[n/2])
}

// checkBaseline compares current against baseline and returns the failure
// messages (empty means pass).
func checkBaseline(cur map[string]benchfmt.Result, baseline []benchfmt.Result,
	match *regexp.Regexp, tolerance float64, normalize bool, w io.Writer) []string {

	type pair struct {
		name       string
		base, curr float64
	}
	var pairs []pair
	var missing []string
	for _, b := range baseline {
		name := benchfmt.BaseName(b.Name)
		if !match.MatchString(name) || b.NsPerOp <= 0 {
			continue
		}
		c, ok := cur[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		pairs = append(pairs, pair{name, b.NsPerOp, c.NsPerOp})
	}

	var fails []string
	for _, name := range missing {
		fails = append(fails, fmt.Sprintf("baseline benchmark %s missing from current run", name))
	}
	if len(pairs) == 0 {
		if len(missing) == 0 {
			fails = append(fails, fmt.Sprintf("no baseline benchmarks match %v", match))
		}
		return fails
	}

	scale := 1.0
	if normalize {
		ratios := make([]float64, len(pairs))
		for i, p := range pairs {
			ratios[i] = p.curr / p.base
		}
		scale = median(ratios)
	}
	fmt.Fprintf(w, "benchguard: %d benchmarks vs baseline, machine scale %.3fx, tolerance %.0f%%\n",
		len(pairs), scale, tolerance*100)
	for _, p := range pairs {
		rel := p.curr / (p.base * scale)
		status := "ok"
		if rel > 1+tolerance {
			status = "REGRESSION"
			fails = append(fails, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.0f%% over normalized baseline)",
				p.name, p.curr, p.base, (rel-1)*100))
		}
		fmt.Fprintf(w, "  %-60s %12.0f ns/op  baseline %12.0f  norm %+.1f%%  %s\n",
			p.name, p.curr, p.base, (rel-1)*100, status)
	}
	return fails
}

// checkSpeedups verifies each ref/fused pair and returns failure messages.
func checkSpeedups(cur map[string]benchfmt.Result, gates []speedupGate, w io.Writer) []string {
	var fails []string
	for _, g := range gates {
		ref, okR := cur[g.name+"/ref"]
		fused, okF := cur[g.name+"/fused"]
		if !okR || !okF {
			fails = append(fails, fmt.Sprintf("%s: missing %s/ref or %s/fused in current run",
				g.name, g.name, g.name))
			continue
		}
		if fused.NsPerOp <= 0 {
			fails = append(fails, fmt.Sprintf("%s: non-positive fused ns/op", g.name))
			continue
		}
		ratio := ref.NsPerOp / fused.NsPerOp
		status := "ok"
		if ratio < g.min {
			status = "TOO SLOW"
			fails = append(fails, fmt.Sprintf("%s: fused is %.2fx faster than ref, need >= %.2fx",
				g.name, ratio, g.min))
		}
		fmt.Fprintf(w, "  %-60s fused %.2fx faster than ref (need >= %.2fx)  %s\n",
			g.name, ratio, g.min, status)
	}
	return fails
}

// checkRatios verifies each num/den sub-benchmark pair and returns failure
// messages.
func checkRatios(cur map[string]benchfmt.Result, gates []ratioGate, w io.Writer) []string {
	var fails []string
	for _, g := range gates {
		num, okN := cur[g.name+"/"+g.num]
		den, okD := cur[g.name+"/"+g.den]
		if !okN || !okD {
			fails = append(fails, fmt.Sprintf("%s: missing %s/%s or %s/%s in current run",
				g.name, g.name, g.num, g.name, g.den))
			continue
		}
		if den.NsPerOp <= 0 {
			fails = append(fails, fmt.Sprintf("%s: non-positive %s ns/op", g.name, g.den))
			continue
		}
		ratio := num.NsPerOp / den.NsPerOp
		status := "ok"
		if ratio < g.min {
			status = "TOO SLOW"
			fails = append(fails, fmt.Sprintf("%s: %s is %.2fx slower than %s, need >= %.2fx",
				g.name, g.num, ratio, g.den, g.min))
		}
		fmt.Fprintf(w, "  %-60s %s/%s ratio %.2fx (need >= %.2fx)  %s\n",
			g.name, g.num, g.den, ratio, g.min, status)
	}
	return fails
}

func main() {
	baselinePath := flag.String("baseline", "", "JSON baseline (bench2json format) for the regression gate")
	matchExpr := flag.String("match", "Advance|SPMD", "regexp of benchmark names the baseline gate checks")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional slowdown vs (normalized) baseline")
	normalize := flag.Bool("normalize", true, "normalize by the median current/baseline ratio (cross-machine)")
	speedups := flag.String("speedup", "", "comma-separated name:min fused-vs-ref speedup gates")
	ratios := flag.String("ratio", "", "comma-separated name:num/den:min sub-benchmark ratio gates")
	flag.Parse()

	gates, err := parseSpeedups(*speedups)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	rgates, err := parseRatios(*ratios)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if *baselinePath == "" && len(gates) == 0 && len(rgates) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: nothing to do (need -baseline and/or -speedup)")
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	results, err := benchfmt.Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark lines found in input")
		os.Exit(2)
	}
	cur := index(results)

	var fails []string
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		var baseline []benchfmt.Result
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *baselinePath, err)
			os.Exit(2)
		}
		re, err := regexp.Compile(*matchExpr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		fails = append(fails, checkBaseline(cur, baseline, re, *tolerance, *normalize, os.Stdout)...)
	}
	fails = append(fails, checkSpeedups(cur, gates, os.Stdout)...)
	fails = append(fails, checkRatios(cur, rgates, os.Stdout)...)

	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: all gates passed")
}
