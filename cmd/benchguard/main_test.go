package main

import (
	"io"
	"regexp"
	"strings"
	"testing"

	"samrpart/internal/benchfmt"
)

func parseText(t *testing.T, text string) map[string]benchfmt.Result {
	t.Helper()
	rs, err := benchfmt.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return index(rs)
}

func baseline(t *testing.T, text string) []benchfmt.Result {
	t.Helper()
	rs, err := benchfmt.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

const seedText = `
BenchmarkAdvance3D/euler3d-rm/fused-8   100   9000000 ns/op
BenchmarkAdvance2D/burgers/fused-8      100    220000 ns/op
BenchmarkSPMDExchange/ranks=4-8           1  52000000 ns/op
BenchmarkOther-8                        100      1000 ns/op
`

func TestBaselinePassesOnUniformSlowdown(t *testing.T) {
	// Same relative profile, machine uniformly 3x slower: normalization
	// must absorb the shift.
	cur := parseText(t, `
BenchmarkAdvance3D/euler3d-rm/fused-4   100  27000000 ns/op
BenchmarkAdvance2D/burgers/fused-4      100    660000 ns/op
BenchmarkSPMDExchange/ranks=4-4           1 156000000 ns/op
`)
	fails := checkBaseline(cur, baseline(t, seedText),
		regexp.MustCompile(`Advance|SPMD`), 0.10, true, io.Discard)
	if len(fails) != 0 {
		t.Fatalf("uniform slowdown flagged: %v", fails)
	}
}

func TestBaselineCatchesSingleRegression(t *testing.T) {
	// One benchmark 2x slower while its peers hold: must fail even under
	// normalization.
	cur := parseText(t, `
BenchmarkAdvance3D/euler3d-rm/fused-8   100  18000000 ns/op
BenchmarkAdvance2D/burgers/fused-8      100    220000 ns/op
BenchmarkSPMDExchange/ranks=4-8           1  52000000 ns/op
`)
	fails := checkBaseline(cur, baseline(t, seedText),
		regexp.MustCompile(`Advance|SPMD`), 0.10, true, io.Discard)
	if len(fails) != 1 || !strings.Contains(fails[0], "euler3d-rm") {
		t.Fatalf("regression not caught: %v", fails)
	}
}

func TestBaselineIgnoresUnmatchedNames(t *testing.T) {
	// BenchmarkOther regresses 100x but is outside -match.
	cur := parseText(t, `
BenchmarkAdvance3D/euler3d-rm/fused-8   100   9000000 ns/op
BenchmarkAdvance2D/burgers/fused-8      100    220000 ns/op
BenchmarkSPMDExchange/ranks=4-8           1  52000000 ns/op
BenchmarkOther-8                        100    100000 ns/op
`)
	fails := checkBaseline(cur, baseline(t, seedText),
		regexp.MustCompile(`Advance|SPMD`), 0.10, true, io.Discard)
	if len(fails) != 0 {
		t.Fatalf("unmatched benchmark gated: %v", fails)
	}
}

func TestBaselineFailsOnMissingBenchmark(t *testing.T) {
	cur := parseText(t, `
BenchmarkAdvance3D/euler3d-rm/fused-8   100   9000000 ns/op
BenchmarkSPMDExchange/ranks=4-8           1  52000000 ns/op
`)
	fails := checkBaseline(cur, baseline(t, seedText),
		regexp.MustCompile(`Advance|SPMD`), 0.10, true, io.Discard)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Fatalf("missing benchmark not reported: %v", fails)
	}
}

func TestSpeedupGate(t *testing.T) {
	cur := parseText(t, `
BenchmarkAdvance3D/euler3d-rm/fused-8   100   9000000 ns/op
BenchmarkAdvance3D/euler3d-rm/ref-8     100  26000000 ns/op
BenchmarkAdvance2D/burgers/fused-8      100    220000 ns/op
BenchmarkAdvance2D/burgers/ref-8        100    230000 ns/op
`)
	gates, err := parseSpeedups("BenchmarkAdvance3D/euler3d-rm:2.0")
	if err != nil {
		t.Fatal(err)
	}
	if fails := checkSpeedups(cur, gates, io.Discard); len(fails) != 0 {
		t.Fatalf("2.9x speedup failed a 2x gate: %v", fails)
	}
	gates, err = parseSpeedups("BenchmarkAdvance2D/burgers:2.0")
	if err != nil {
		t.Fatal(err)
	}
	fails := checkSpeedups(cur, gates, io.Discard)
	if len(fails) != 1 || !strings.Contains(fails[0], "need >= 2.00x") {
		t.Fatalf("1.05x speedup passed a 2x gate: %v", fails)
	}
	gates, err = parseSpeedups("BenchmarkAdvance3D/missing:2.0")
	if err != nil {
		t.Fatal(err)
	}
	if fails := checkSpeedups(cur, gates, io.Discard); len(fails) != 1 {
		t.Fatalf("missing pair not reported: %v", fails)
	}
}

func TestRatioGate(t *testing.T) {
	cur := parseText(t, `
BenchmarkRepartitionPlan/boxes=4096/ranks=64/distributed-8   100    560000 ns/op
BenchmarkRepartitionPlan/boxes=4096/ranks=64/central-8        10  45000000 ns/op
BenchmarkRepartitionPlan/boxes=256/ranks=16/distributed-8    100     40000 ns/op
BenchmarkRepartitionPlan/boxes=256/ranks=16/central-8        100    100000 ns/op
`)
	gates, err := parseRatios("BenchmarkRepartitionPlan/boxes=4096/ranks=64:central/distributed:5.0")
	if err != nil {
		t.Fatal(err)
	}
	if fails := checkRatios(cur, gates, io.Discard); len(fails) != 0 {
		t.Fatalf("80x ratio failed a 5x gate: %v", fails)
	}
	gates, err = parseRatios("BenchmarkRepartitionPlan/boxes=256/ranks=16:central/distributed:5.0")
	if err != nil {
		t.Fatal(err)
	}
	fails := checkRatios(cur, gates, io.Discard)
	if len(fails) != 1 || !strings.Contains(fails[0], "need >= 5.00x") {
		t.Fatalf("2.5x ratio passed a 5x gate: %v", fails)
	}
	gates, err = parseRatios("BenchmarkRepartitionPlan/boxes=9999/ranks=1:central/distributed:5.0")
	if err != nil {
		t.Fatal(err)
	}
	if fails := checkRatios(cur, gates, io.Discard); len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Fatalf("missing pair not reported: %v", fails)
	}
}

func TestParseRatiosRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"noColon", "a:b:2", "a:num/:2", "a:/den:2", "a:num/den:x", "a:num/den:-1", "a:num/den:0", "a:num/den"} {
		if _, err := parseRatios(bad); err == nil {
			t.Errorf("parseRatios(%q) accepted", bad)
		}
	}
	gates, err := parseRatios("A:c/d:2,B/sub:x/y:1.5")
	if err != nil || len(gates) != 2 {
		t.Fatalf("multi-gate spec mis-parsed: %v %v", gates, err)
	}
	if g := gates[1]; g.name != "B/sub" || g.num != "x" || g.den != "y" || g.min != 1.5 {
		t.Errorf("gate fields mis-parsed: %+v", g)
	}
}

func TestParseSpeedupsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"noColon", "a:b", "a:-1", "a:0"} {
		if _, err := parseSpeedups(bad); err == nil {
			t.Errorf("parseSpeedups(%q) accepted", bad)
		}
	}
	gates, err := parseSpeedups("A:2,B/sub:1.5")
	if err != nil || len(gates) != 2 || gates[1].name != "B/sub" || gates[1].min != 1.5 {
		t.Errorf("multi-gate spec mis-parsed: %v %v", gates, err)
	}
}
