// Command partview inspects what the partitioners do to a hierarchy
// snapshot: it evolves the RM3D oracle workload for a number of regrids,
// partitions the resulting bounding-box list with every scheme at the given
// capacities, and prints per-node assignments side by side.
//
//	go run ./cmd/partview -caps 0.16,0.19,0.31,0.34 -regrids 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"samrpart/internal/amr"
	"samrpart/internal/engine"
	"samrpart/internal/exp"
	"samrpart/internal/geom"
	"samrpart/internal/partition"
	"samrpart/internal/trace"
)

func parseCaps(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	caps := make([]float64, 0, len(parts))
	sum := 0.0
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad capacity %q: %w", p, err)
		}
		caps = append(caps, v)
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("capacities sum to %g", sum)
	}
	for i := range caps {
		caps[i] /= sum
	}
	return caps, nil
}

func main() {
	var (
		capsArg = flag.String("caps", "0.16,0.19,0.31,0.34", "comma-separated relative capacities (normalized)")
		regrids = flag.Int("regrids", 3, "oracle regrids to evolve before snapshotting")
		boxes   = flag.Bool("boxes", false, "list every box with its owner")
		grid    = flag.Bool("grid", false, "render an ASCII view of the refinement levels (x-y slice)")
	)
	flag.Parse()
	caps, err := parseCaps(*capsArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partview:", err)
		os.Exit(2)
	}
	// Evolve the hierarchy.
	h, err := amr.New(exp.RM3DHierarchy())
	if err != nil {
		fmt.Fprintln(os.Stderr, "partview:", err)
		os.Exit(1)
	}
	oracle := engine.NewRM3DOracle()
	for r := 0; r < *regrids; r++ {
		flags, err := oracle.Flags(h, r*5)
		if err != nil {
			fmt.Fprintln(os.Stderr, "partview:", err)
			os.Exit(1)
		}
		if err := h.Regrid(flags); err != nil {
			fmt.Fprintln(os.Stderr, "partview:", err)
			os.Exit(1)
		}
	}
	list := h.AllBoxes()
	work := partition.SubcycledWork(h.Config().RefineRatio)
	fmt.Printf("hierarchy: %d levels, %d boxes, total work %d\n",
		h.NumLevels(), len(list), h.TotalWork())
	fmt.Print(h.Describe())
	fmt.Println()
	if *grid {
		renderGrid(h)
	}

	partitioners := []partition.Partitioner{
		partition.NewHetero(),
		partition.NewComposite(h.Config().RefineRatio),
		partition.NewSFCHetero(h.Config().RefineRatio),
		partition.NewLevelWise(h.Config().RefineRatio),
		partition.NewHierarchical(h.Config().RefineRatio),
		partition.Greedy{},
		partition.RoundRobin{},
	}
	tab := trace.NewTable("per-node assigned work (ideal share in parentheses)",
		append([]string{"partitioner"}, nodeLabels(len(caps))...)...)
	for _, p := range partitioners {
		a, err := p.Partition(list, caps, work)
		if err != nil {
			fmt.Fprintf(os.Stderr, "partview: %s: %v\n", p.Name(), err)
			os.Exit(1)
		}
		cells := make([]string, 0, 1+len(caps))
		cells = append(cells, p.Name())
		for k := range caps {
			cells = append(cells, fmt.Sprintf("%.0f (%.0f)", a.Work[k], a.Ideal[k]))
		}
		tab.Add(cells...)
		if *boxes {
			fmt.Printf("-- %s (%d boxes, max imbalance %.1f%%)\n", p.Name(), len(a.Boxes), a.MaxImbalance())
			for i, b := range a.Boxes {
				fmt.Printf("   %v -> node %d (work %.0f)\n", b, a.Owners[i], work(b))
			}
		}
	}
	if err := tab.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "partview:", err)
		os.Exit(1)
	}
}

func nodeLabels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("P%d", i)
	}
	return out
}

// renderGrid prints the deepest refinement level covering each base cell of
// the mid-z x-y slice ('.' = level 0 only).
func renderGrid(h *amr.Hierarchy) {
	dom := h.Config().Domain
	ratio := h.Config().RefineRatio
	midZ := (dom.Lo[2] + dom.Hi[2]) / 2
	fmt.Printf("refinement map (x-y slice at z=%d; digit = deepest level):\n", midZ)
	for y := dom.Hi[1]; y >= dom.Lo[1]; y-- {
		line := make([]byte, 0, dom.Size(0))
		for x := dom.Lo[0]; x <= dom.Hi[0]; x++ {
			deepest := 0
			for l := h.NumLevels() - 1; l >= 1; l-- {
				// Base cell (x,y,midZ) refined to level l.
				pt := geom.Pt3(x, y, midZ)
				scale := 1
				for i := 0; i < l; i++ {
					scale *= ratio
				}
				fine := pt.Scale(scale)
				covered := false
				for _, b := range h.Level(l) {
					if b.Contains(fine) {
						covered = true
						break
					}
				}
				if covered {
					deepest = l
					break
				}
			}
			if deepest == 0 {
				line = append(line, '.')
			} else {
				line = append(line, byte('0'+deepest%10))
			}
		}
		fmt.Println(string(line))
	}
	fmt.Println()
}
