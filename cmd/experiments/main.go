// Command experiments regenerates every table and figure of the paper's
// evaluation section on the virtual cluster, printing paper-vs-measured
// data. Run with -all, or select individual experiments:
//
//	go run ./cmd/experiments -all
//	go run ./cmd/experiments -fig7 -table3
//	go run ./cmd/experiments -ablations
//
// With -events the studies append a JSONL span log that cmd/obsreport can
// render; with -obs-addr a live /metrics + /state + pprof endpoint serves
// while the studies run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"samrpart/internal/engine"
	"samrpart/internal/exp"
	"samrpart/internal/monitor"
	"samrpart/internal/obs"
)

// renderable is any experiment result that can print itself.
type renderable interface {
	Render(w io.Writer) error
}

// options holds every experiment flag. Registration is split out over a
// *flag.FlagSet so tests can assert that each flag documented in
// EXPERIMENTS.md and README.md actually exists.
type options struct {
	all       *bool
	scaling   *bool
	fig7      *bool
	fig8      *bool
	fig11     *bool
	table2    *bool
	table3    *bool
	ablations *bool
	faultExp  *bool
	faultStr  *string
	elastic   *bool
	traceOver *bool
	sensorExp *bool
	movement  *bool
	sensorStr *string

	weakScaling *bool
	weakRanks   *int
	groupSize   *int
	csvPath     *string
	stage2      *bool
	stage2CSV   *string

	repartThresh *float64
	workers      *int
	cpuProf      *string
	memProf      *string

	obsAddr *string
	events  *string
	obsSeed *int64
}

// registerFlags declares every flag on fs and returns the bound values.
func registerFlags(fs *flag.FlagSet) *options {
	o := &options{}
	o.all = fs.Bool("all", false, "run every experiment")
	o.scaling = fs.Bool("scaling", false, "strong-scaling study on an idle cluster")
	o.fig7 = fs.Bool("fig7", false, "Figure 7 / Table I: execution time vs cluster size")
	o.fig8 = fs.Bool("fig8", false, "Figures 8-10: assignments and imbalance at fixed capacities")
	o.fig11 = fs.Bool("fig11", false, "Figure 11: dynamic sensing during the run")
	o.table2 = fs.Bool("table2", false, "Table II: dynamic vs static sensing")
	o.table3 = fs.Bool("table3", false, "Table III / Figures 12-15: sensing frequency sweep")
	o.ablations = fs.Bool("ablations", false, "design-choice ablations")
	o.faultExp = fs.Bool("fault", false, "fault study: node crash on the virtual cluster + SPMD rank recovery")
	o.faultStr = fs.String("fault-spec", "crash:rank=2,iter=10", "crash injected by -fault, e.g. crash:rank=2,iter=10")
	o.elastic = fs.Bool("elastic", false, "elastic-membership study: fail-stop vs rejoin vs rejoin+shed under seeded churn, plus checkpoint-corruption survival")
	o.traceOver = fs.Bool("trace-overhead", false, "tracing-overhead study: traced vs untraced SPMD runs across the solver suite (wall-clock, bytes on wire, log volume, bit-exactness)")
	o.sensorExp = fs.Bool("sensorfault", false, "degraded-sensing study: static vs naive vs hygienic adaptive under sensor faults")
	o.movement = fs.Bool("movement", false, "migration-cost study: repartitioning with and without the owner-affinity remap")
	o.sensorStr = fs.String("sensor-fault-spec", "",
		"sensor faults for -sensorfault (default: the study's built-in spec), e.g. sensor:seed=7,frac=0.25,garbage=0.3")
	o.weakScaling = fs.Bool("weak-scaling", false, "weak-scaling study: distributed vs centralized repartition plan construction on virtual clusters")
	o.weakRanks = fs.Int("weak-ranks", 4096, "largest virtual rank count for -weak-scaling (ladder: 16, 64, 256, 1024, 4096)")
	o.groupSize = fs.Int("group-size", 64, "hierarchical partitioner group size for -weak-scaling")
	o.csvPath = fs.String("csv", "", "also write the -weak-scaling sweep as CSV to this file")
	o.stage2 = fs.Bool("stage2", false, "stage-2 decentralization study: replicated vs group-local slicing cost over the -weak-ranks ladder")
	o.stage2CSV = fs.String("stage2-csv", "", "also write the -stage2 sweep as CSV to this file")
	o.repartThresh = fs.Float64("repartition-threshold", 0,
		"hysteresis threshold for the -sensorfault hygiene scenario (imbalance percentage points)")
	o.workers = fs.Int("workers", 0, "cap scheduler threads via GOMAXPROCS (0 = leave as-is); experiment configs drive solver kernels internally, so this bounds their pool width")
	o.cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
	o.memProf = fs.String("memprofile", "", "write a heap profile to this file at exit")
	o.obsAddr = fs.String("obs-addr", "", "serve /metrics, /state, /healthz and pprof on this address while running (e.g. 127.0.0.1:9190)")
	o.events = fs.String("events", "", "append the observability span log (JSONL) to this file; render it with cmd/obsreport")
	o.obsSeed = fs.Int64("obs-seed", 0, "seed for the run ID in metrics and event logs (0 = wall clock)")
	return o
}

func main() {
	o := registerFlags(flag.CommandLine)
	flag.Parse()
	if !(*o.all || *o.fig7 || *o.fig8 || *o.fig11 || *o.table2 || *o.table3 ||
		*o.ablations || *o.scaling || *o.faultExp || *o.elastic || *o.traceOver ||
		*o.sensorExp || *o.movement || *o.weakScaling || *o.stage2) {
		flag.Usage()
		os.Exit(2)
	}
	fault, err := engine.ParseFaultSpec(*o.faultStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	var sensorSpec *monitor.ProbeFaultSpec
	if *o.sensorStr != "" {
		sensorSpec, err = monitor.ParseProbeFaultSpec(*o.sensorStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
	}
	if *o.workers > 0 {
		runtime.GOMAXPROCS(*o.workers)
	}
	if *o.cpuProf != "" {
		f, err := os.Create(*o.cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *o.memProf != "" {
		defer func() {
			f, err := os.Create(*o.memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	if *o.obsAddr != "" || *o.events != "" {
		var evw io.Writer
		if *o.events != "" {
			f, err := os.Create(*o.events)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			defer f.Close()
			evw = f
		}
		rt := obs.New(obs.Config{Seed: *o.obsSeed, Events: evw})
		exp.SetObs(rt)
		defer func() {
			if err := rt.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: flush events:", err)
			}
		}()
		if *o.obsAddr != "" {
			srv, err := rt.Serve(*o.obsAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "experiments: observability on http://%s (run %s)\n",
				srv.Addr(), rt.RunIDString())
		}
	}

	type job struct {
		on   bool
		name string
		run  func() (renderable, error)
	}
	jobs := []job{
		{*o.all || *o.fig7, "Figure 7 / Table I", func() (renderable, error) { return exp.Fig7TableI() }},
		{*o.all || *o.fig8, "Figures 8-10", func() (renderable, error) { return exp.Fig8to10() }},
		{*o.all || *o.fig11, "Figure 11", func() (renderable, error) { return exp.Fig11() }},
		{*o.all || *o.table2, "Table II", func() (renderable, error) { return exp.Table2() }},
		{*o.all || *o.table3, "Table III / Figures 12-15", func() (renderable, error) { return exp.Table3() }},
		{*o.all || *o.ablations, "Ablation: capacity weights", func() (renderable, error) { return exp.AblationWeights() }},
		{*o.all || *o.ablations, "Ablation: splitting constraints", func() (renderable, error) { return exp.AblationSplitting() }},
		{*o.all || *o.ablations, "Ablation: SFC choice", func() (renderable, error) { return exp.AblationSFC() }},
		{*o.all || *o.ablations, "Ablation: forecaster", func() (renderable, error) { return exp.AblationForecaster() }},
		{*o.all || *o.ablations, "Ablation: granularity", func() (renderable, error) { return exp.AblationGranularity() }},
		{*o.all || *o.ablations, "Ablation: locality vs balance", func() (renderable, error) { return exp.AblationLocality() }},
		{*o.all || *o.ablations, "Ablation: weights under memory pressure", func() (renderable, error) { return exp.AblationMemoryWeights() }},
		{*o.all || *o.faultExp, "Fault recovery", func() (renderable, error) {
			crashes := fault.Crashes()
			if len(crashes) == 0 {
				return nil, fmt.Errorf("-fault needs a crash event in -fault-spec")
			}
			return exp.FaultRecovery(16, crashes[0].Rank, crashes[0].Iter)
		}},
		{*o.all || *o.elastic, "Elastic membership", func() (renderable, error) { return exp.Elastic(16) }},
		{*o.all || *o.traceOver, "Tracing overhead", func() (renderable, error) { return exp.TraceOverhead(32) }},
		{*o.all || *o.sensorExp, "Degraded sensing", func() (renderable, error) { return exp.SensorFaults(40, sensorSpec, *o.repartThresh) }},
		{*o.all || *o.movement, "Migration cost", func() (renderable, error) { return exp.Movement(16) }},
		{*o.all || *o.weakScaling, "Weak scaling (plan construction)", func() (renderable, error) {
			r, err := exp.WeakScaling(*o.weakRanks, *o.groupSize)
			if err != nil {
				return nil, err
			}
			if *o.csvPath != "" {
				f, err := os.Create(*o.csvPath)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				if err := r.WriteCSV(f); err != nil {
					return nil, err
				}
			}
			return r, nil
		}},
		{*o.all || *o.stage2, "Stage-2 decentralization (replicated vs group-local)", func() (renderable, error) {
			r, err := exp.WeakScalingStage2(*o.weakRanks, *o.groupSize)
			if err != nil {
				return nil, err
			}
			if *o.stage2CSV != "" {
				f, err := os.Create(*o.stage2CSV)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				if err := r.WriteCSV(f); err != nil {
					return nil, err
				}
			}
			return r, nil
		}},
		{*o.all || *o.scaling, "Strong scaling", func() (renderable, error) { return exp.Scalability() }},
		{*o.all || *o.scaling, "Heterogeneity sweep", func() (renderable, error) { return exp.HeterogeneitySweep() }},
		{*o.all || *o.scaling, "Mixed hardware", func() (renderable, error) { return exp.MixedHardware() }},
	}
	for _, j := range jobs {
		if !j.on {
			continue
		}
		fmt.Printf("==== %s ====\n", j.name)
		r, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", j.name, err)
			os.Exit(1)
		}
		if err := r.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: render %s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
