// Command experiments regenerates every table and figure of the paper's
// evaluation section on the virtual cluster, printing paper-vs-measured
// data. Run with -all, or select individual experiments:
//
//	go run ./cmd/experiments -all
//	go run ./cmd/experiments -fig7 -table3
//	go run ./cmd/experiments -ablations
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"samrpart/internal/engine"
	"samrpart/internal/exp"
	"samrpart/internal/monitor"
)

// renderable is any experiment result that can print itself.
type renderable interface {
	Render(w io.Writer) error
}

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		scaling   = flag.Bool("scaling", false, "strong-scaling study on an idle cluster")
		fig7      = flag.Bool("fig7", false, "Figure 7 / Table I: execution time vs cluster size")
		fig8      = flag.Bool("fig8", false, "Figures 8-10: assignments and imbalance at fixed capacities")
		fig11     = flag.Bool("fig11", false, "Figure 11: dynamic sensing during the run")
		table2    = flag.Bool("table2", false, "Table II: dynamic vs static sensing")
		table3    = flag.Bool("table3", false, "Table III / Figures 12-15: sensing frequency sweep")
		ablations = flag.Bool("ablations", false, "design-choice ablations")
		faultExp  = flag.Bool("fault", false, "fault study: node crash on the virtual cluster + SPMD rank recovery")
		faultStr  = flag.String("fault-spec", "crash:rank=2,iter=10", "crash injected by -fault, e.g. crash:rank=2,iter=10")
		sensorExp = flag.Bool("sensorfault", false, "degraded-sensing study: static vs naive vs hygienic adaptive under sensor faults")
		movement  = flag.Bool("movement", false, "migration-cost study: repartitioning with and without the owner-affinity remap")
		sensorStr = flag.String("sensor-fault-spec", "",
			"sensor faults for -sensorfault (default: the study's built-in spec), e.g. sensor:seed=7,frac=0.25,garbage=0.3")
		repartThresh = flag.Float64("repartition-threshold", 0,
			"hysteresis threshold for the -sensorfault hygiene scenario (imbalance percentage points)")
		workers = flag.Int("workers", 0, "cap scheduler threads via GOMAXPROCS (0 = leave as-is); experiment configs drive solver kernels internally, so this bounds their pool width")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	if !(*all || *fig7 || *fig8 || *fig11 || *table2 || *table3 || *ablations || *scaling || *faultExp || *sensorExp || *movement) {
		flag.Usage()
		os.Exit(2)
	}
	fault, err := engine.ParseFaultSpec(*faultStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	var sensorSpec *monitor.ProbeFaultSpec
	if *sensorStr != "" {
		sensorSpec, err = monitor.ParseProbeFaultSpec(*sensorStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
	}
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	type job struct {
		on   bool
		name string
		run  func() (renderable, error)
	}
	jobs := []job{
		{*all || *fig7, "Figure 7 / Table I", func() (renderable, error) { return exp.Fig7TableI() }},
		{*all || *fig8, "Figures 8-10", func() (renderable, error) { return exp.Fig8to10() }},
		{*all || *fig11, "Figure 11", func() (renderable, error) { return exp.Fig11() }},
		{*all || *table2, "Table II", func() (renderable, error) { return exp.Table2() }},
		{*all || *table3, "Table III / Figures 12-15", func() (renderable, error) { return exp.Table3() }},
		{*all || *ablations, "Ablation: capacity weights", func() (renderable, error) { return exp.AblationWeights() }},
		{*all || *ablations, "Ablation: splitting constraints", func() (renderable, error) { return exp.AblationSplitting() }},
		{*all || *ablations, "Ablation: SFC choice", func() (renderable, error) { return exp.AblationSFC() }},
		{*all || *ablations, "Ablation: forecaster", func() (renderable, error) { return exp.AblationForecaster() }},
		{*all || *ablations, "Ablation: granularity", func() (renderable, error) { return exp.AblationGranularity() }},
		{*all || *ablations, "Ablation: locality vs balance", func() (renderable, error) { return exp.AblationLocality() }},
		{*all || *ablations, "Ablation: weights under memory pressure", func() (renderable, error) { return exp.AblationMemoryWeights() }},
		{*all || *faultExp, "Fault recovery", func() (renderable, error) { return exp.FaultRecovery(16, fault.Rank, fault.Iter) }},
		{*all || *sensorExp, "Degraded sensing", func() (renderable, error) { return exp.SensorFaults(40, sensorSpec, *repartThresh) }},
		{*all || *movement, "Migration cost", func() (renderable, error) { return exp.Movement(16) }},
		{*all || *scaling, "Strong scaling", func() (renderable, error) { return exp.Scalability() }},
		{*all || *scaling, "Heterogeneity sweep", func() (renderable, error) { return exp.HeterogeneitySweep() }},
		{*all || *scaling, "Mixed hardware", func() (renderable, error) { return exp.MixedHardware() }},
	}
	for _, j := range jobs {
		if !j.on {
			continue
		}
		fmt.Printf("==== %s ====\n", j.name)
		r, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", j.name, err)
			os.Exit(1)
		}
		if err := r.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: render %s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
