package main

import (
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestAllFlagsRegistered asserts registerFlags declares the complete flag
// surface the tooling depends on.
func TestAllFlagsRegistered(t *testing.T) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	o := registerFlags(fs)
	for _, name := range []string{
		"all", "scaling", "fig7", "fig8", "fig11", "table2", "table3",
		"ablations", "fault", "fault-spec", "elastic", "trace-overhead", "sensorfault", "movement",
		"sensor-fault-spec", "repartition-threshold", "workers",
		"cpuprofile", "memprofile", "obs-addr", "events", "obs-seed",
		"weak-scaling", "weak-ranks", "group-size", "csv",
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if o.all == nil || o.obsAddr == nil || o.events == nil {
		t.Fatal("options not bound")
	}
}

// TestDocumentedFlagsExist scans EXPERIMENTS.md and README.md for
// `go run ./cmd/experiments -flag ...` invocations and checks that every
// flag the docs mention is actually registered.
func TestDocumentedFlagsExist(t *testing.T) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	registerFlags(fs)
	invocation := regexp.MustCompile(`go run \./cmd/experiments([^\n` + "`" + `]*)`)
	flagTok := regexp.MustCompile(`-([a-z][a-z0-9-]*)`)
	for _, doc := range []string{"../../EXPERIMENTS.md", "../../README.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range invocation.FindAllStringSubmatch(string(data), -1) {
			args, _, _ := strings.Cut(m[1], "#") // drop shell comments
			for _, f := range flagTok.FindAllStringSubmatch(args, -1) {
				if fs.Lookup(f[1]) == nil {
					t.Errorf("%s documents unknown flag -%s (in %q)",
						strings.TrimPrefix(doc, "../../"), f[1], strings.TrimSpace(m[0]))
				}
			}
		}
	}
}
