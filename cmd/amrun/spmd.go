package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"samrpart/internal/engine"
	"samrpart/internal/geom"
	"samrpart/internal/monitor"
	otrace "samrpart/internal/obs/trace"
	"samrpart/internal/partition"
	"samrpart/internal/solver"
	"samrpart/internal/transport"
)

// spmdOpts carries the flags the -spmd mode consumes.
type spmdOpts struct {
	kernel    string
	iters     int
	tracePath string
	faults    engine.FaultSchedule
	straggler monitor.StragglerPolicy
}

// runSPMD runs an in-process n-rank SPMD group (channel transport, FT on)
// and prints a per-rank summary. With -trace it writes the distributed
// trace log that cmd/tracepath analyzes — this is the driver the nightly
// traced chaos soak uses.
func runSPMD(n int, o spmdOpts) error {
	if n < 2 {
		return fmt.Errorf("-spmd needs at least 2 ranks, got %d", n)
	}
	cfg := engine.SPMDConfig{
		Partitioner: partition.NewHetero(),
		CapsAt: func(iter int) []float64 {
			caps := make([]float64, n)
			for i := range caps {
				caps[i] = 1 / float64(n)
			}
			if iter >= o.iters/2 {
				// Shift a third of rank 0's share late in the run so every
				// soak exercises migration, not just halo traffic.
				d := caps[0] / 3
				caps[0] -= d
				caps[n-1] += d
			}
			return caps
		},
		Iterations:      o.iters,
		RepartEvery:     4,
		RecvDeadline:    10 * time.Second,
		ControlDeadline: 500 * time.Millisecond,
		Faults:          o.faults,
		Straggler:       o.straggler,
	}
	switch o.kernel {
	case "advect2d":
		cfg.Kernel = solver.NewAdvection2D(1.0, 0.5, 0.3, 0.3, 0.1)
	case "muscl2d":
		cfg.Kernel = solver.NewMUSCLAdvection2D(1.0, 0.5, 0.3, 0.3, 0.1)
	case "buckley":
		cfg.Kernel = solver.NewBuckleyLeverett(1.0, 0.3)
	case "rm3d":
		cfg.Kernel = solver.NewRichtmyerMeshkov([geom.MaxDim]float64{1, 1, 1})
	default:
		return fmt.Errorf("unknown -kernel %q for -spmd (want advect2d, muscl2d, buckley or rm3d)", o.kernel)
	}
	if o.kernel == "rm3d" {
		cfg.Domain = geom.Box3(0, 0, 0, 15, 15, 15)
		cfg.TileSize = 4
		cfg.BaseGrid = solver.UniformGrid(1.0 / 16)
	} else {
		cfg.Domain = geom.Box2(0, 0, 31, 31)
		cfg.TileSize = 8
		cfg.BaseGrid = solver.UniformGrid(1.0 / 32)
	}

	ckDir, err := os.MkdirTemp("", "amrun-spmd-ckpt")
	if err != nil {
		return err
	}
	defer os.RemoveAll(ckDir)
	cfg.FT = engine.FTConfig{
		Enabled:         true,
		CheckpointEvery: 4,
		CheckpointDir:   ckDir,
		SyncCheckpoint:  true,
		CheckpointKeep:  2,
	}

	if o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return err
		}
		tl := otrace.NewLog(f)
		cfg.Trace = tl
		defer func() {
			if err := tl.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "amrun: flush trace:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "amrun: close trace:", err)
			}
			fmt.Fprintf(os.Stderr, "amrun: trace log written to %s (analyze with cmd/tracepath)\n", o.tracePath)
		}()
	}

	eps, err := transport.NewGroup(n)
	if err != nil {
		return err
	}
	for i, ep := range eps {
		eps[i] = transport.NewFaulty(ep, transport.FaultSpec{})
	}
	results := make([]*engine.SPMDResult, n)
	errs := make([]error, n)
	start := time.Now()
	var wg sync.WaitGroup
	for r := range eps {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[r], errs[r] = engine.RunSPMDRank(eps[r], cfg)
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	wall := time.Since(start)

	var bytes int64
	members, recoveries, demotions, promotions := 0, 0, 0, 0
	for _, r := range results {
		bytes += r.BytesSent
		if r.Crashed {
			continue
		}
		members++
		if r.Recoveries > recoveries {
			recoveries = r.Recoveries
		}
		if r.StragglerDemotions > demotions {
			demotions = r.StragglerDemotions
		}
		if r.StragglerPromotions > promotions {
			promotions = r.StragglerPromotions
		}
	}
	fmt.Printf("spmd: %d ranks, %d iterations in %.1fms: %d finished members, %d recoveries, %d demotions, %d promotions, %.3f MB sent\n",
		n, o.iters, float64(wall.Microseconds())/1e3, members, recoveries,
		demotions, promotions, float64(bytes)/1e6)
	return nil
}
