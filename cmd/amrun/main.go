// Command amrun runs an AMR application on a simulated heterogeneous
// cluster and prints the execution summary and per-regrid assignments.
//
//	go run ./cmd/amrun -nodes 8 -partitioner hetero -iters 100 -load
//	go run ./cmd/amrun -kernel advect2d -nodes 4 -iters 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"samrpart/internal/amr"
	"samrpart/internal/checkpoint"
	"samrpart/internal/cluster"
	"samrpart/internal/engine"
	"samrpart/internal/exp"
	"samrpart/internal/geom"
	"samrpart/internal/monitor"
	"samrpart/internal/obs"
	"samrpart/internal/partition"
	"samrpart/internal/solver"
	"samrpart/internal/trace"
)

// hygieneConfig maps the -hygiene flag to a monitor.Hygiene; the zero value
// keeps the raw pre-hygiene sensing path.
func hygieneConfig(on bool) monitor.Hygiene {
	if !on {
		return monitor.Hygiene{}
	}
	return monitor.DefaultHygiene()
}

func main() {
	var (
		nodes        = flag.Int("nodes", 4, "cluster size")
		pname        = flag.String("partitioner", "hetero", "hetero | composite | sfchetero | levelwise | hierarchical | greedy | roundrobin")
		groupSize    = flag.Int("group-size", 4, "nodes per capacity group for -partitioner hierarchical")
		kernel       = flag.String("kernel", "rm3d", "rm3d (oracle-driven) | advect2d | muscl2d | buckley (real numerics)")
		iters        = flag.Int("iters", 50, "coarse iterations")
		regrid       = flag.Int("regrid", 5, "regrid every N iterations")
		sense        = flag.Int("sense", 0, "re-sense every N iterations (0 = once at start)")
		load         = flag.Bool("load", false, "apply the paper's synthetic background-load script")
		verbose      = flag.Bool("v", false, "print per-regrid assignments")
		forecast     = flag.String("forecaster", "last", "monitor forecaster: last|mean|median|ewma|adaptive")
		saveCkpt     = flag.String("save", "", "write a checkpoint of the final state to this file")
		loadCkpt     = flag.String("restore", "", "restore hierarchy/solution from this checkpoint before running")
		stats        = flag.Bool("stats", false, "print per-level hierarchy statistics")
		workers      = flag.Int("workers", 0, "solver worker-pool width (0 = all cores, 1 = serial; any value is bit-exact)")
		senseWorkers = flag.Int("sense-workers", 0,
			"monitor probe fan-out width (0/1 = serial; >1 probes that many nodes concurrently, bit-exact)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		ckEvery  = flag.Int("checkpoint-every", 0, "write a periodic checkpoint every N iterations (0 = off)")
		ckPath   = flag.String("checkpoint-path", "", "periodic checkpoint file (required with -checkpoint-every)")
		faultStr = flag.String("fault-spec", "",
			"inject ';'-separated faults, e.g. crash:node=2,iter=10;rejoin:node=2,iter=18;slow:node=1,from=5,to=12,factor=4 (kinds: crash|rejoin|pause|slow; see DESIGN.md §13)")
		rejoinOK = flag.Bool("rejoin", true,
			"honor rejoin: events in -fault-spec; false strips them for a fail-stop baseline of the same churn script")
		stragShed = flag.Bool("straggler-shed", false,
			"detect persistently slow nodes (EWMA/MAD with hysteresis) and shed work off them before their sensors report trouble")
		ckKeep = flag.Int("checkpoint-keep", 0,
			"retain the N newest periodic checkpoints as iteration-stamped siblings for corruption fallback (0 = overwrite only)")
		sensorStr = flag.String("sensor-fault-spec", "",
			"inject sensor faults, e.g. sensor:seed=7,frac=0.25,drop=0.1,timeout=0.1,garbage=0.2,freeze=0.02")
		hygiene = flag.Bool("hygiene", false,
			"enable sensing hygiene (health tracking, sanitization, MAD outlier rejection, staleness decay)")
		repartThresh = flag.Float64("repartition-threshold", 0,
			"skip sense-triggered repartitions that improve max-imbalance by less than this many percentage points (0 = always repartition)")
		affinityRemap = flag.Bool("affinity-remap", false,
			"relabel repartition output toward the previous owners (partition.RemapOwners) to cut migration volume at unchanged balance")
		obsAddr = flag.String("obs-addr", "",
			"serve /metrics, /state, /healthz and pprof on this address while running (e.g. 127.0.0.1:9190)")
		events = flag.String("events", "",
			"write the observability span log (JSONL) to this file; render it with cmd/obsreport")
		obsSeed = flag.Int64("obs-seed", 0, "seed for the run ID in metrics and event logs (0 = wall clock)")
		spmd    = flag.Int("spmd", 0,
			"run an in-process N-rank SPMD group (channel transport, FT on) instead of the virtual-cluster engine; honors -kernel, -iters, -fault-spec, -straggler-shed, -trace")
		traceOut = flag.String("trace", "",
			"with -spmd, write the distributed trace log (JSONL) to this file; analyze it with cmd/tracepath")
	)
	flag.Parse()

	var faults engine.FaultSchedule
	if *faultStr != "" {
		var err error
		faults, err = engine.ParseFaultSpec(*faultStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amrun:", err)
			os.Exit(2)
		}
		if !*rejoinOK {
			faults = faults.WithoutRejoins()
		}
	}
	var straggler monitor.StragglerPolicy
	if *stragShed {
		straggler = monitor.DefaultStragglerPolicy()
	}
	if *spmd > 0 {
		if err := runSPMD(*spmd, spmdOpts{
			kernel:    *kernel,
			iters:     *iters,
			tracePath: *traceOut,
			faults:    faults,
			straggler: straggler,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "amrun:", err)
			os.Exit(1)
		}
		return
	}
	if *traceOut != "" {
		fmt.Fprintln(os.Stderr, "amrun: -trace requires -spmd (distributed tracing instruments the SPMD runtime)")
		os.Exit(2)
	}

	var sensorFaults *monitor.ProbeFaultSpec
	if *sensorStr != "" {
		var err error
		sensorFaults, err = monitor.ParseProbeFaultSpec(*sensorStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amrun:", err)
			os.Exit(2)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "amrun:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "amrun:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "amrun:", err)
			}
		}()
	}

	var p partition.Partitioner
	switch *pname {
	case "hetero":
		p = partition.NewHetero()
	case "composite":
		p = partition.NewComposite(2)
	case "greedy":
		p = partition.Greedy{}
	case "roundrobin":
		p = partition.RoundRobin{}
	case "sfchetero":
		p = partition.NewSFCHetero(2)
	case "levelwise":
		p = partition.NewLevelWise(2)
	case "hierarchical":
		h := partition.NewHierarchical(2)
		h.GroupSize = *groupSize
		p = h
	default:
		fmt.Fprintf(os.Stderr, "amrun: unknown partitioner %q\n", *pname)
		os.Exit(2)
	}

	var app engine.Application
	hier := exp.RM3DHierarchy()
	switch *kernel {
	case "rm3d":
		app = engine.NewRM3DOracle()
	case "advect2d":
		app = engine.NewSimApp(
			solver.NewAdvection2D(1.0, 0.5, 0.25, 0.25, 0.08),
			solver.UniformGrid(1.0/64), 0.08)
		hier = amr.Config{
			Domain:        geom.Box2(0, 0, 63, 63),
			RefineRatio:   2,
			MaxLevels:     3,
			NestingBuffer: 1,
			Cluster:       amr.ClusterOptions{Efficiency: 0.65, MinSide: 4},
		}
	case "muscl2d":
		app = engine.NewSimApp(
			solver.NewMUSCLAdvection2D(1.0, 0.5, 0.25, 0.25, 0.08),
			solver.UniformGrid(1.0/64), 0.08)
		hier = amr.Config{
			Domain:        geom.Box2(0, 0, 63, 63),
			RefineRatio:   2,
			MaxLevels:     2,
			NestingBuffer: 1,
			Cluster:       amr.ClusterOptions{Efficiency: 0.65, MinSide: 4},
		}
	case "buckley":
		app = engine.NewSimApp(
			solver.NewBuckleyLeverett(1.0, 0.3),
			solver.UniformGrid(1.0/64), 0.1)
		hier = amr.Config{
			Domain:        geom.Box2(0, 0, 63, 63),
			RefineRatio:   2,
			MaxLevels:     2,
			NestingBuffer: 1,
			Cluster:       amr.ClusterOptions{Efficiency: 0.65, MinSide: 4},
		}
	default:
		fmt.Fprintf(os.Stderr, "amrun: unknown kernel %q\n", *kernel)
		os.Exit(2)
	}

	var obsRT *obs.Runtime
	if *obsAddr != "" || *events != "" {
		var evw io.Writer
		if *events != "" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintln(os.Stderr, "amrun:", err)
				os.Exit(1)
			}
			defer f.Close()
			evw = f
		}
		obsRT = obs.New(obs.Config{Seed: *obsSeed, Events: evw})
		defer func() {
			if err := obsRT.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "amrun: flush events:", err)
			}
		}()
		if *obsAddr != "" {
			srv, err := obsRT.Serve(*obsAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "amrun:", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "amrun: observability on http://%s (run %s)\n",
				srv.Addr(), obsRT.RunIDString())
		}
	}

	clus, err := cluster.New(cluster.Uniform(*nodes, cluster.LinuxWorkstation()), cluster.DefaultParams())
	if err != nil {
		fmt.Fprintln(os.Stderr, "amrun:", err)
		os.Exit(1)
	}
	if *load {
		exp.PaperLoadScript(clus)
	}
	e, err := engine.New(engine.Config{
		Name:                 fmt.Sprintf("%s/%s", *kernel, p.Name()),
		Hierarchy:            hier,
		App:                  app,
		Partitioner:          p,
		Iterations:           *iters,
		RegridEvery:          *regrid,
		SenseEvery:           *sense,
		Forecaster:           *forecast,
		Workers:              *workers,
		SenseWorkers:         *senseWorkers,
		CheckpointEvery:      *ckEvery,
		CheckpointPath:       *ckPath,
		CheckpointKeep:       *ckKeep,
		Faults:               faults,
		Straggler:            straggler,
		SensorFaults:         sensorFaults,
		Hygiene:              hygieneConfig(*hygiene),
		RepartitionThreshold: *repartThresh,
		AffinityRemap:        *affinityRemap,
		Obs:                  obsRT,
	}, clus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amrun:", err)
		os.Exit(1)
	}
	obsRT.SetState("engine", e.Snapshot)
	if *loadCkpt != "" {
		st, loaded, err := checkpoint.LoadFileFallback(*loadCkpt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amrun: load checkpoint:", err)
			os.Exit(1)
		}
		if loaded != *loadCkpt {
			fmt.Fprintf(os.Stderr, "amrun: %s unusable, fell back to %s\n", *loadCkpt, loaded)
		}
		if err := e.Restore(st); err != nil {
			fmt.Fprintln(os.Stderr, "amrun: restore:", err)
			os.Exit(1)
		}
		fmt.Printf("restored checkpoint %s (iter %d, t=%.1fs, %d levels)\n",
			loaded, st.Iter, st.VirtualTime, st.Hierarchy.NumLevels())
	}
	tr, err := e.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "amrun:", err)
		os.Exit(1)
	}
	if err := tr.WriteSummary(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "amrun:", err)
		os.Exit(1)
	}
	h := e.Hierarchy()
	fmt.Printf("final hierarchy: %d levels, %d boxes, %d total work units\n",
		h.NumLevels(), len(h.AllBoxes()), h.TotalWork())
	if *stats {
		fmt.Print(h.Describe())
	}
	if *saveCkpt != "" {
		st, err := e.Checkpoint(*iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amrun: checkpoint:", err)
			os.Exit(1)
		}
		if err := checkpoint.SaveFile(*saveCkpt, st); err != nil {
			fmt.Fprintln(os.Stderr, "amrun: save checkpoint:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *saveCkpt)
	}
	if *verbose {
		labels := make([]string, *nodes)
		for k := range labels {
			labels[k] = fmt.Sprintf("P%d", k)
		}
		s := trace.NewSeries("\nper-regrid work assignment", "regrid", labels...)
		for i, rec := range tr.Records {
			s.Add(float64(i+1), rec.Work...)
		}
		if err := s.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "amrun:", err)
			os.Exit(1)
		}
	}
}
