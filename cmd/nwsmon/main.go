// Command nwsmon is a small standalone resource-monitoring service in the
// spirit of the Network Weather Service: in -serve mode it samples the local
// host (via /proc) plus optional simulated peers and answers TCP queries
// with measurements and relative capacities; in -query mode it prints a
// remote monitor's answer. The protocol lives in internal/monitor
// (monitor.Service / monitor.Query).
//
//	go run ./cmd/nwsmon -serve -addr 127.0.0.1:7878 -peers 3
//	go run ./cmd/nwsmon -query -addr 127.0.0.1:7878
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"samrpart/internal/capacity"
	"samrpart/internal/cluster"
	"samrpart/internal/monitor"
)

// hostProber measures the local host through /proc and models optional
// simulated peers so a single machine can demo a multi-node monitor.
type hostProber struct {
	peers *cluster.Cluster
	start time.Time
}

// NumNodes implements monitor.Prober.
func (p *hostProber) NumNodes() int {
	if p.peers == nil {
		return 1
	}
	return 1 + p.peers.NumNodes()
}

// Probe implements monitor.Prober. Node 0 is the local host.
func (p *hostProber) Probe(k int) capacity.Measurement {
	if k == 0 {
		return capacity.Measurement{
			CPUAvail:      hostCPUAvail(),
			FreeMemoryMB:  hostFreeMemMB(),
			BandwidthMBps: 12.5,
		}
	}
	t := time.Since(p.start).Seconds()
	n := p.peers.Node(k - 1)
	return capacity.Measurement{
		CPUAvail:      n.CPUAvail(t),
		FreeMemoryMB:  n.FreeMemoryMB(t),
		BandwidthMBps: n.Bandwidth(t),
	}
}

// hostCPUAvail estimates the CPU fraction available from /proc/loadavg.
func hostCPUAvail() float64 {
	data, err := os.ReadFile("/proc/loadavg")
	if err != nil {
		return 1
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return 1
	}
	load, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 1
	}
	avail := 1 - load/float64(numCPU())
	if avail < 0.02 {
		avail = 0.02
	}
	if avail > 1 {
		avail = 1
	}
	return avail
}

func numCPU() int {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return 1
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "processor") {
			n++
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// hostFreeMemMB reads MemAvailable from /proc/meminfo.
func hostFreeMemMB() float64 {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return 256
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "MemAvailable:") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseFloat(fields[1], 64); err == nil {
					return kb / 1024
				}
			}
		}
	}
	return 256
}

func serve(addr string, peerCount int) error {
	var peers *cluster.Cluster
	if peerCount > 0 {
		var err error
		peers, err = cluster.New(cluster.Uniform(peerCount, cluster.LinuxWorkstation()), cluster.DefaultParams())
		if err != nil {
			return err
		}
		// Give the simulated peers some dynamics so repeated queries show
		// moving capacities.
		peers.Node(0).AddLoad(cluster.Sinusoid{Mean: 0.4, Amplitude: 0.4, Period: 120, MemMB: 100})
	}
	prober := &hostProber{peers: peers, start: time.Now()}
	mon := monitor.NewAdaptiveMonitor(prober)
	svc := monitor.NewService(mon, capacity.EqualWeights(), func() float64 {
		return time.Since(prober.start).Seconds()
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("nwsmon: serving %d node(s) on %s\n", prober.NumNodes(), ln.Addr())
	return svc.Serve(ln)
}

func query(addr string) error {
	resp, err := monitor.Query(addr, 3*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("monitor @ %s (%s)\n", addr, resp.Time)
	for k, m := range resp.Measurements {
		fmt.Printf("  node %d: cpu %.0f%%  mem %.0f MB  bw %.1f MB/s  ->  C_%d = %.1f%%\n",
			k, m.CPUAvail*100, m.FreeMemoryMB, m.BandwidthMBps, k, resp.Capacities[k]*100)
	}
	return nil
}

func main() {
	var (
		serveMode = flag.Bool("serve", false, "run the monitor service")
		queryMode = flag.Bool("query", false, "query a running monitor")
		addr      = flag.String("addr", "127.0.0.1:7878", "service address")
		peerCount = flag.Int("peers", 3, "simulated peer nodes in -serve mode")
	)
	flag.Parse()
	var err error
	switch {
	case *serveMode:
		err = serve(*addr, *peerCount)
	case *queryMode:
		err = query(*addr)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwsmon:", err)
		os.Exit(1)
	}
}
