module samrpart

go 1.22
